type sign = Plus | Minus

type factor = Mul | Div

type logic_op = L_and | L_or | L_xor | L_nand | L_nor

type kind =
  | Inport of string * Value.ty
  | Outport of string
  | Constant of Value.t
  | Gain of float
  | Sum of sign list
  | Product of factor list
  | Min_max of [ `Min | `Max ] * int
  | Abs
  | Not
  | Saturation of { lower : float; upper : float }
  | Relational of Ir.cmpop
  | Logical of logic_op * int
  | Compare_to_const of Ir.cmpop * float
  | Switch of { cmp : Ir.cmpop; threshold : float }
  | Multiport_switch of { labels : int list }
  | Unit_delay of Value.t
  | Delay of { initial : Value.t; length : int }
  | Discrete_integrator of {
      initial : float;
      gain : float;
      lower : float;
      upper : float;
    }
  | Counter of { initial : int; modulo : int }
  | Data_store_read of string
  | Data_store_write of string
  | Data_store_write_element of string
  | Selector
  | Chart of Ir.fragment
  | Enabled of { sub : t; held : bool }
  | If_else of { then_sys : t; else_sys : t }
  | Case_switch of { cases : (int * t) list; default : t option }

and block = {
  id : int;
  bname : string;
  kind : kind;
  srcs : src option array;
}

and src = { s_block : int; s_port : int }

and t = {
  m_name : string;
  blocks : block array;
  stores : (string * Value.ty * Value.t) list;
}

exception Invalid_model of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid_model s)) fmt

let io_signature m =
  let ins = ref [] and outs = ref [] in
  Array.iter
    (fun b ->
      match b.kind with
      | Inport (name, ty) -> ins := (name, ty) :: !ins
      | Outport name -> outs := name :: !outs
      | _ -> ())
    m.blocks;
  (List.rev !ins, List.rev !outs)

let sub_signature = io_signature

let in_arity = function
  | Inport _ | Constant _ | Counter _ | Data_store_read _ -> 0
  | Outport _ | Gain _ | Abs | Not | Saturation _ | Compare_to_const _
  | Unit_delay _ | Delay _ | Discrete_integrator _ | Data_store_write _ ->
    1
  | Sum signs -> List.length signs
  | Product factors -> List.length factors
  | Min_max (_, n) -> n
  | Relational _ -> 2
  | Logical (_, n) -> n
  | Switch _ -> 3
  | Multiport_switch { labels } -> 2 + List.length labels
  | Data_store_write_element _ -> 2
  | Selector -> 2
  | Chart frag -> List.length frag.Ir.f_inputs
  | Enabled { sub; _ } -> 1 + List.length (fst (sub_signature sub))
  | If_else { then_sys; _ } -> 1 + List.length (fst (sub_signature then_sys))
  | Case_switch { cases; default } ->
    let sub =
      match cases, default with
      | (_, sub) :: _, _ -> sub
      | [], Some sub -> sub
      | [], None -> invalid "case_switch: no subsystems"
    in
    1 + List.length (fst (sub_signature sub))

let out_arity = function
  | Outport _ | Data_store_write _ | Data_store_write_element _ -> 0
  | Inport _ | Constant _ | Gain _ | Sum _ | Product _ | Min_max _ | Abs
  | Not | Saturation _ | Relational _ | Logical _ | Compare_to_const _
  | Switch _ | Multiport_switch _ | Unit_delay _ | Delay _
  | Discrete_integrator _ | Counter _ | Data_store_read _ | Selector ->
    1
  | Chart frag -> List.length frag.Ir.f_outputs
  | Enabled { sub; _ } -> List.length (snd (sub_signature sub))
  | If_else { then_sys; _ } -> List.length (snd (sub_signature then_sys))
  | Case_switch { cases; default } ->
    (match cases, default with
     | (_, sub) :: _, _ -> List.length (snd (sub_signature sub))
     | [], Some sub -> List.length (snd (sub_signature sub))
     | [], None -> invalid "case_switch: no subsystems")

let kind_name = function
  | Inport _ -> "inport"
  | Outport _ -> "outport"
  | Constant _ -> "constant"
  | Gain _ -> "gain"
  | Sum _ -> "sum"
  | Product _ -> "product"
  | Min_max (`Min, _) -> "min"
  | Min_max (`Max, _) -> "max"
  | Abs -> "abs"
  | Not -> "not"
  | Saturation _ -> "saturation"
  | Relational _ -> "relational"
  | Logical _ -> "logical"
  | Compare_to_const _ -> "compare"
  | Switch _ -> "switch"
  | Multiport_switch _ -> "multiport-switch"
  | Unit_delay _ -> "unit-delay"
  | Delay _ -> "delay"
  | Discrete_integrator _ -> "integrator"
  | Counter _ -> "counter"
  | Data_store_read _ -> "ds-read"
  | Data_store_write _ -> "ds-write"
  | Data_store_write_element _ -> "ds-write-elem"
  | Selector -> "selector"
  | Chart _ -> "chart"
  | Enabled _ -> "enabled-subsystem"
  | If_else _ -> "if-else-subsystem"
  | Case_switch _ -> "case-subsystem"

let rec block_count m =
  Array.fold_left
    (fun n b ->
      n
      +
      match b.kind with
      | Enabled { sub; _ } -> 1 + block_count sub
      | If_else { then_sys; else_sys } ->
        1 + block_count then_sys + block_count else_sys
      | Case_switch { cases; default } ->
        1
        + List.fold_left (fun k (_, sub) -> k + block_count sub) 0 cases
        + (match default with Some sub -> block_count sub | None -> 0)
      | _ -> 1)
    0 m.blocks

(* Type inference.

   Output types are computed with a worklist: source and stateful blocks
   are immediately typed, combinational blocks once all their inputs are
   typed.  If the worklist stalls before every block is typed, the
   remaining blocks form a combinational (algebraic) loop. *)

let is_num = function
  | Value.Tint _ | Value.Treal _ -> true
  | Value.Tbool | Value.Tvec _ -> false

let join_num ctx a b =
  match a, b with
  | Value.Tint _, Value.Tint _ -> Value.tint
  | (Value.Tint _ | Value.Treal _), (Value.Tint _ | Value.Treal _) ->
    Value.treal
  | (Value.Tbool | Value.Tvec _), _ | _, (Value.Tbool | Value.Tvec _) ->
    invalid "%s: non-numeric operand" ctx

let join_many ctx = function
  | [] -> invalid "%s: no operands" ctx
  | ty :: rest -> List.fold_left (join_num ctx) ty rest

let require_bool ctx ty =
  if ty <> Value.Tbool then invalid "%s: expected bool input" ctx

let require_num ctx ty =
  if not (is_num ty) then invalid "%s: expected numeric input" ctx

let lookup_store stores name ctx =
  match List.find_opt (fun (n, _, _) -> n = name) stores with
  | Some (_, ty, _) -> ty
  | None -> invalid "%s: unknown data store %s" ctx name

(* [infer stores m] returns per-block output types; recursive over
   subsystems.  [stores] is the data-store environment visible to [m]
   (outer stores plus [m]'s own). *)
let rec infer stores (m : t) : Value.ty array array =
  let stores = m.stores @ stores in
  let n = Array.length m.blocks in
  let out_tys : Value.ty array option array = Array.make n None in
  let input_ty b i =
    match b.srcs.(i) with
    | None -> None
    | Some { s_block; s_port } ->
      (match out_tys.(s_block) with
       | None -> None
       | Some tys ->
         if s_port < 0 || s_port >= Array.length tys then
           invalid "%s: source port %d out of range" b.bname s_port
         else Some tys.(s_port))
  in
  let all_input_tys b =
    let arity = Array.length b.srcs in
    let rec go i acc =
      if i < 0 then Some acc
      else
        match input_ty b i with
        | None -> None
        | Some ty -> go (i - 1) (ty :: acc)
    in
    go (arity - 1) []
  in
  let ctx b = Fmt.str "%s/%s" m.m_name b.bname in
  let infer_block b (ins : Value.ty list) : Value.ty array =
    let c = ctx b in
    match b.kind, ins with
    | Inport (_, ty), [] -> [| ty |]
    | Outport _, [ _ ] -> [||]
    | Constant v, [] -> [| Ir.ty_of_value v |]
    | Gain g, [ ty ] ->
      require_num c ty;
      (match ty with
       | Value.Tint _ when Float.is_integer g -> [| Value.tint |]
       | _ -> [| Value.treal |])
    | Sum _, ins | Product _, ins | Min_max _, ins ->
      [| join_many c ins |]
    | Abs, [ ty ] ->
      require_num c ty;
      [| ty |]
    | Not, [ ty ] ->
      require_bool c ty;
      [| Value.Tbool |]
    | Saturation _, [ ty ] ->
      require_num c ty;
      [| ty |]
    | Relational op, [ ta; tb ] ->
      (match op with
       | Ir.Eq | Ir.Ne when ta = Value.Tbool && tb = Value.Tbool -> ()
       | _ ->
         require_num c ta;
         require_num c tb);
      [| Value.Tbool |]
    | Logical _, ins ->
      List.iter (require_bool c) ins;
      [| Value.Tbool |]
    | Compare_to_const _, [ ty ] ->
      require_num c ty;
      [| Value.Tbool |]
    | Switch _, [ t1; tc; t2 ] ->
      if not (is_num tc || tc = Value.Tbool) then
        invalid "%s: switch control must be numeric or bool" c;
      if Value.ty_compatible t1 t2 then [| t1 |]
      else [| join_num c t1 t2 |]
    | Multiport_switch _, sel :: data ->
      require_num c sel;
      (match data with
       | [] -> invalid "%s: multiport switch without data inputs" c
       | d0 :: rest ->
         let ty =
           List.fold_left
             (fun acc ty ->
               if Value.ty_compatible acc ty then acc
               else join_num c acc ty)
             d0 rest
         in
         [| ty |])
    | Unit_delay init, [ ty ] | Delay { initial = init; _ }, [ ty ] ->
      let ity = Ir.ty_of_value init in
      if not (Value.ty_compatible ity ty || (is_num ity && is_num ty)) then
        invalid "%s: delay initial value type mismatch" c;
      [| ty |]
    | Discrete_integrator _, [ ty ] ->
      require_num c ty;
      [| Value.treal |]
    | Counter _, [] -> [| Value.tint |]
    | Data_store_read name, [] -> [| lookup_store stores name c |]
    | Data_store_write name, [ ty ] ->
      let sty = lookup_store stores name c in
      if not (Value.ty_compatible sty ty || (is_num sty && is_num ty)) then
        invalid "%s: data store write type mismatch" c;
      [||]
    | Data_store_write_element name, [ ti; tv ] ->
      require_num c ti;
      (match lookup_store stores name c with
       | Value.Tvec (ety, _) ->
         if not (Value.ty_compatible ety tv || (is_num ety && is_num tv))
         then invalid "%s: data store element type mismatch" c
       | Value.Tbool | Value.Tint _ | Value.Treal _ ->
         invalid "%s: data store %s is not a vector" c name);
      [||]
    | Selector, [ tvec; tidx ] ->
      require_num c tidx;
      (match tvec with
       | Value.Tvec (ety, _) -> [| ety |]
       | Value.Tbool | Value.Tint _ | Value.Treal _ ->
         invalid "%s: selector input is not a vector" c)
    | Chart frag, ins ->
      List.iteri
        (fun i ty ->
          let formal = List.nth frag.Ir.f_inputs i in
          if
            not
              (Value.ty_compatible formal.Ir.ty ty
              || (is_num formal.Ir.ty && is_num ty))
          then invalid "%s: chart input %s type mismatch" c formal.Ir.name)
        ins;
      Array.of_list (List.map (fun (v : Ir.var) -> v.ty) frag.Ir.f_outputs)
    | Enabled { sub; _ }, enable :: ins ->
      require_bool c enable;
      subsystem_out_tys stores c sub ins
    | If_else { then_sys; else_sys }, cond :: ins ->
      require_bool c cond;
      let t1 = subsystem_out_tys stores c then_sys ins in
      let t2 = subsystem_out_tys stores c else_sys ins in
      if Array.length t1 <> Array.length t2 then
        invalid "%s: if/else subsystem output arity mismatch" c;
      Array.map2
        (fun a b ->
          if Value.ty_compatible a b then a else join_num c a b)
        t1 t2
    | Case_switch { cases; default }, sel :: ins ->
      require_num c sel;
      let subs =
        List.map snd cases
        @ (match default with Some d -> [ d ] | None -> [])
      in
      (match subs with
       | [] -> invalid "%s: empty case switch" c
       | s0 :: rest ->
         let t0 = subsystem_out_tys stores c s0 ins in
         List.fold_left
           (fun acc sub ->
             let ts = subsystem_out_tys stores c sub ins in
             if Array.length ts <> Array.length acc then
               invalid "%s: case subsystem output arity mismatch" c;
             Array.map2
               (fun a b ->
                 if Value.ty_compatible a b then a else join_num c a b)
               acc ts)
           t0 rest)
    | _, _ -> invalid "%s: arity mismatch for %s" c (kind_name b.kind)
  in
  (* Stateful blocks whose outputs do not depend on current inputs can be
     typed before their inputs are — they break combinational cycles. *)
  let breaks_loop b =
    match b.kind with
    | Unit_delay _ | Delay _ | Discrete_integrator _ -> true
    | _ -> false
  in
  let loop_break_ty b =
    match b.kind with
    | Unit_delay init | Delay { initial = init; _ } ->
      [| Ir.ty_of_value init |]
    | Discrete_integrator _ -> [| Value.treal |]
    | _ -> assert false
  in
  let progress = ref true in
  let remaining = ref n in
  while !progress && !remaining > 0 do
    progress := false;
    Array.iter
      (fun b ->
        if out_tys.(b.id) = None then
          match all_input_tys b with
          | Some ins ->
            out_tys.(b.id) <- Some (infer_block b ins);
            decr remaining;
            progress := true
          | None ->
            if breaks_loop b then begin
              out_tys.(b.id) <- Some (loop_break_ty b);
              decr remaining;
              progress := true
            end)
      m.blocks
  done;
  if !remaining > 0 then begin
    let stuck =
      Array.to_list m.blocks
      |> List.filter (fun b -> out_tys.(b.id) = None)
      |> List.map (fun b -> b.bname)
    in
    invalid "%s: algebraic loop or unconnected input involving: %s" m.m_name
      (String.concat ", " stuck)
  end;
  Array.map
    (function Some tys -> tys | None -> assert false)
    out_tys

and subsystem_out_tys stores ctx sub (actual_ins : Value.ty list) =
  let formal_ins, _ = sub_signature sub in
  if List.length formal_ins <> List.length actual_ins then
    invalid "%s: subsystem %s arity mismatch" ctx sub.m_name;
  List.iter2
    (fun (name, fty) aty ->
      if not (Value.ty_compatible fty aty || (is_num fty && is_num aty))
      then invalid "%s: subsystem %s input %s type mismatch" ctx sub.m_name name)
    formal_ins actual_ins;
  let tys = infer stores sub in
  (* Output types are the types feeding each outport, in outport order. *)
  let outs = ref [] in
  Array.iter
    (fun b ->
      match b.kind with
      | Outport _ ->
        (match b.srcs.(0) with
         | Some { s_block; s_port } -> outs := tys.(s_block).(s_port) :: !outs
         | None -> invalid "%s: unconnected outport in %s" ctx sub.m_name)
      | _ -> ())
    sub.blocks;
  Array.of_list (List.rev !outs)

let infer_port_types m = infer [] m
let infer_in_env stores m = infer stores m

let rec validate_rec stores (m : t) =
  let n = Array.length m.blocks in
  Array.iteri
    (fun i b ->
      if b.id <> i then invalid "%s: block %s has id %d at index %d" m.m_name b.bname b.id i;
      let want = in_arity b.kind in
      if Array.length b.srcs <> want then
        invalid "%s: block %s has %d wired inputs, expected %d" m.m_name
          b.bname (Array.length b.srcs) want;
      Array.iteri
        (fun p src ->
          match src with
          | None -> invalid "%s: block %s input %d unconnected" m.m_name b.bname p
          | Some { s_block; s_port } ->
            if s_block < 0 || s_block >= n then
              invalid "%s: block %s input %d wired to missing block" m.m_name
                b.bname p;
            let src_arity = out_arity m.blocks.(s_block).kind in
            if s_port < 0 || s_port >= src_arity then
              invalid "%s: block %s input %d wired to missing port" m.m_name
                b.bname p)
        b.srcs)
    m.blocks;
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun b ->
      match b.kind with
      | Inport (name, _) | Outport name ->
        if Hashtbl.mem seen name then
          invalid "%s: duplicate port name %s" m.m_name name;
        Hashtbl.replace seen name ()
      | _ -> ())
    m.blocks;
  let all_stores = m.stores @ stores in
  List.iter
    (fun (name, ty, init) ->
      if not (Value.member ty init) then
        invalid "%s: data store %s initial value outside its type" m.m_name
          name)
    m.stores;
  Array.iter
    (fun b ->
      match b.kind with
      | Enabled { sub; _ } -> validate_rec all_stores sub
      | If_else { then_sys; else_sys } ->
        validate_rec all_stores then_sys;
        validate_rec all_stores else_sys
      | Case_switch { cases; default } ->
        List.iter (fun (_, sub) -> validate_rec all_stores sub) cases;
        (match default with
         | Some sub -> validate_rec all_stores sub
         | None -> ())
      | Multiport_switch { labels } ->
        let sorted = List.sort_uniq Int.compare labels in
        if List.length sorted <> List.length labels then
          invalid "%s: duplicate multiport labels in %s" m.m_name b.bname
      | _ -> ())
    m.blocks;
  ignore (infer stores m)

let validate m = validate_rec [] m

let pp ppf m =
  Fmt.pf ppf "@[<v>model %s (%d blocks, %d stores)@," m.m_name
    (Array.length m.blocks) (List.length m.stores);
  Array.iter
    (fun b ->
      Fmt.pf ppf "  #%d %s : %s@," b.id b.bname (kind_name b.kind))
    m.blocks;
  Fmt.pf ppf "@]"
