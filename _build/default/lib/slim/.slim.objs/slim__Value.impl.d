lib/slim/value.ml: Array Float Fmt Format Int List Random Stdlib String
