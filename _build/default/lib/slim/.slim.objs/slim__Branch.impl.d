lib/slim/branch.ml: Fmt Int Ir List Map Set
