lib/slim/ir.ml: Array Fmt Format Hashtbl Int List Value
