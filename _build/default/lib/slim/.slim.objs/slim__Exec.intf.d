lib/slim/exec.mli: Branch Fmt Ir Map Random Value
