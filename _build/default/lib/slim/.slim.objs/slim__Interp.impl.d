lib/slim/interp.ml: Array Branch Fmt Format Hashtbl Ir List Map String Value
