lib/slim/interp.ml: Array Branch Exec Fmt Format Hashtbl Ir List Value
