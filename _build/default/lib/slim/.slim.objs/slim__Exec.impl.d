lib/slim/exec.ml: Array Branch Fmt Format Hashtbl Int64 Ir List Map String Value
