lib/slim/compile.ml: Array Float Fmt Format Hashtbl Int Ir List Model Set String Value
