lib/slim/ir.mli: Fmt Value
