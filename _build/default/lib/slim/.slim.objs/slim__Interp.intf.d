lib/slim/interp.mli: Branch Exec Fmt Ir Random Value
