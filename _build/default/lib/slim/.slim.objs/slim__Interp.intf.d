lib/slim/interp.mli: Branch Fmt Ir Map Random Value
