lib/slim/compile.mli: Ir Model
