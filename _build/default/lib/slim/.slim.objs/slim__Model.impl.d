lib/slim/model.ml: Array Float Fmt Format Hashtbl Int Ir List String Value
