lib/slim/value.mli: Fmt Format Random
