lib/slim/model.mli: Fmt Ir Value
