lib/slim/builder.ml: Array Fmt Ir List Model Value
