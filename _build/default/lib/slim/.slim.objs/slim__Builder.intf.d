lib/slim/builder.mli: Ir Model Value
