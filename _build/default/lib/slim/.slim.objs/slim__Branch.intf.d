lib/slim/branch.mli: Fmt Ir Map Set
