(* Diagram -> IR compiler.

   Per (sub)model:
   1. topologically order blocks on combinational dependencies (delay-like
      blocks have none: their output is a function of state only);
   2. emit, per block, assignments of its output-port locals;
   3. collect state-update statements and emit them after the body, still
      inside the conditional context of the enclosing subsystem. *)

type ctx = {
  mutable c_states : (Ir.var * Value.t) list;
  mutable c_locals : Ir.var list;
  mutable fresh : int;
  c_defs : (string, Ir.expr) Hashtbl.t;
      (* unconditional combinational definitions across the whole
         diagram, for inlining logic cones into decision guards *)
}

let add_state ctx v init = ctx.c_states <- (v, init) :: ctx.c_states
let add_local ctx v = ctx.c_locals <- v :: ctx.c_locals

(* Name of the local holding block [id]'s output port [port]. *)
let port_local path id port = Fmt.str "%sb%d.%d" path id port

let invalid fmt =
  Format.kasprintf (fun s -> raise (Model.Invalid_model s)) fmt

let is_int_ty = function Value.Tint _ -> true | _ -> false

(* Constant matching the numeric flavour of [ty]. *)
let num_const ty (x : float) =
  if is_int_ty ty && Float.is_integer x then Ir.ci (int_of_float x)
  else Ir.cr x

let as_real e = Ir.Unop (Ir.To_real, e)

let topo_order (m : Model.t) =
  let n = Array.length m.blocks in
  let deps b =
    match (b : Model.block).kind with
    | Model.Unit_delay _ | Model.Delay _ | Model.Discrete_integrator _ ->
      []
    | _ ->
      Array.to_list b.srcs
      |> List.filter_map (function
        | Some { Model.s_block; _ } -> Some s_block
        | None -> None)
  in
  let indegree = Array.make n 0 in
  let rdeps = Array.make n [] in
  Array.iter
    (fun b ->
      let ds = List.sort_uniq Int.compare (deps b) in
      indegree.(b.Model.id) <- List.length ds;
      List.iter (fun d -> rdeps.(d) <- b.Model.id :: rdeps.(d)) ds)
    m.blocks;
  let module H = Set.Make (Int) in
  let ready = ref H.empty in
  Array.iteri (fun i d -> if d = 0 then ready := H.add i !ready) indegree;
  let order = ref [] in
  let count = ref 0 in
  while not (H.is_empty !ready) do
    let i = H.min_elt !ready in
    ready := H.remove i !ready;
    order := i :: !order;
    incr count;
    List.iter
      (fun j ->
        indegree.(j) <- indegree.(j) - 1;
        if indegree.(j) = 0 then ready := H.add j !ready)
      rdeps.(i)
  done;
  if !count <> n then invalid "%s: algebraic loop detected" m.m_name;
  List.rev !order

(* [compile_model] returns (body, updates, outport bindings).  [bind] maps
   a (top-level or subsystem) inport name to the expression carrying its
   actual value.  [store_env] maps visible data-store names to their IR
   state-variable names. *)
let rec compile_model ctx ~path ~store_env ~bind (m : Model.t) =
  let store_env =
    List.fold_left
      (fun env (name, ty, init) ->
        let svar_name = Fmt.str "%sds.%s" path name in
        add_state ctx (Ir.var Ir.State svar_name ty) init;
        (name, svar_name) :: env)
      store_env m.stores
  in
  let types =
    (* Types need the full store environment of enclosing models; rebuild
       a flat store list for inference. *)
    let flat_stores =
      m.stores
      @ List.filter_map
          (fun (name, sname) ->
            match
              List.find_opt
                (fun ((v : Ir.var), _) -> v.name = sname)
                ctx.c_states
            with
            | Some (v, init) -> Some (name, v.ty, init)
            | None -> None)
          store_env
    in
    Model.infer_in_env flat_stores m
  in
  let local_of id port = Ir.lv (port_local path id port) in
  let declare_locals (b : Model.block) =
    Array.iteri
      (fun p ty -> add_local ctx (Ir.local (port_local path b.id p) ty))
      types.(b.id)
  in
  Array.iter declare_locals m.blocks;
  let src_expr (b : Model.block) i =
    match b.srcs.(i) with
    | Some { Model.s_block; s_port } -> local_of s_block s_port
    | None -> invalid "%s: unconnected input on %s" m.m_name b.bname
  in
  let src_ty (b : Model.block) i =
    match b.srcs.(i) with
    | Some { Model.s_block; s_port } -> types.(s_block).(s_port)
    | None -> invalid "%s: unconnected input on %s" m.m_name b.bname
  in
  let out_bindings = ref [] in
  let body = ref [] and updates = ref [] in
  let emit s = body := s :: !body in
  let emit_update s = updates := s :: !updates in
  (* Simulink's coverage counts the inputs of the logic blocks feeding
     a Switch as conditions, so guards inline the full combinational
     cone rather than hide it behind a local. *)
  let defs = ctx.c_defs in
  let set0 (b : Model.block) e =
    Hashtbl.replace defs (port_local path b.id 0) e;
    emit (Ir.assign (port_local path b.id 0) e)
  in
  let inline_guard e =
    let budget = ref 400 in
    let rec go e =
      if !budget <= 0 then e
      else begin
        decr budget;
        match (e : Ir.expr) with
        | Ir.Var (Ir.Local, n) -> (
          match Hashtbl.find_opt defs n with
          | Some def -> go def
          | None -> e)
        | Ir.Const _ | Ir.Var _ -> e
        | Ir.Unop (op, a) -> Ir.Unop (op, go a)
        | Ir.Binop (op, a, b) -> Ir.Binop (op, go a, go b)
        | Ir.Cmp (op, a, b) -> Ir.Cmp (op, go a, go b)
        | Ir.And (a, b) -> Ir.And (go a, go b)
        | Ir.Or (a, b) -> Ir.Or (go a, go b)
        | Ir.Ite (c, t, f) -> Ir.Ite (go c, go t, go f)
        | Ir.Index (v, i) -> Ir.Index (go v, go i)
      end
    in
    go e
  in
  let lookup_store name =
    match List.assoc_opt name store_env with
    | Some svar -> svar
    | None -> invalid "%s: unknown data store %s" m.m_name name
  in
  let compile_block (b : Model.block) =
    match b.kind with
    | Model.Inport (name, _) -> set0 b (bind name)
    | Model.Outport name ->
      out_bindings := (name, src_expr b 0) :: !out_bindings
    | Model.Constant v -> set0 b (Ir.Const v)
    | Model.Gain g ->
      let e = src_expr b 0 in
      if is_int_ty (src_ty b 0) && Float.is_integer g then
        set0 b Ir.(e *: ci (int_of_float g))
      else set0 b Ir.(as_real e *: cr g)
    | Model.Sum signs ->
      let terms =
        List.mapi (fun i sign -> (sign, src_expr b i)) signs
      in
      let e =
        match terms with
        | (Model.Plus, e0) :: rest ->
          List.fold_left
            (fun acc (sign, e) ->
              match sign with
              | Model.Plus -> Ir.(acc +: e)
              | Model.Minus -> Ir.(acc -: e))
            e0 rest
        | (Model.Minus, e0) :: rest ->
          List.fold_left
            (fun acc (sign, e) ->
              match sign with
              | Model.Plus -> Ir.(acc +: e)
              | Model.Minus -> Ir.(acc -: e))
            Ir.(ci 0 -: e0)
            rest
        | [] -> invalid "%s: empty sum" m.m_name
      in
      set0 b e
    | Model.Product factors ->
      let terms = List.mapi (fun i f -> (f, src_expr b i)) factors in
      let e =
        match terms with
        | (Model.Mul, e0) :: rest ->
          List.fold_left
            (fun acc (f, e) ->
              match f with
              | Model.Mul -> Ir.(acc *: e)
              | Model.Div -> Ir.(acc /: e))
            e0 rest
        | (Model.Div, e0) :: rest ->
          List.fold_left
            (fun acc (f, e) ->
              match f with
              | Model.Mul -> Ir.(acc *: e)
              | Model.Div -> Ir.(acc /: e))
            Ir.(cr 1.0 /: e0)
            rest
        | [] -> invalid "%s: empty product" m.m_name
      in
      set0 b e
    | Model.Min_max (mode, n) ->
      let op = match mode with `Min -> Ir.Min | `Max -> Ir.Max in
      let e = ref (src_expr b 0) in
      for i = 1 to n - 1 do
        e := Ir.Binop (op, !e, src_expr b i)
      done;
      set0 b !e
    | Model.Abs -> set0 b (Ir.Unop (Ir.Abs_op, src_expr b 0))
    | Model.Not -> set0 b (Ir.not_ (src_expr b 0))
    | Model.Saturation { lower; upper } ->
      let ty = src_ty b 0 in
      let e = src_expr b 0 in
      set0 b
        (Ir.Binop
           (Ir.Min, num_const ty upper, Ir.Binop (Ir.Max, num_const ty lower, e)))
    | Model.Relational op -> set0 b (Ir.Cmp (op, src_expr b 0, src_expr b 1))
    | Model.Logical (op, n) ->
      let ins = List.init n (fun i -> src_expr b i) in
      let e =
        match op with
        | Model.L_and -> Ir.conj ins
        | Model.L_or -> Ir.disj ins
        | Model.L_nand -> Ir.not_ (Ir.conj ins)
        | Model.L_nor -> Ir.not_ (Ir.disj ins)
        | Model.L_xor ->
          (match ins with
           | e0 :: rest ->
             List.fold_left
               (fun acc e ->
                 Ir.(Or (And (acc, not_ e), And (not_ acc, e))))
               e0 rest
           | [] -> invalid "%s: empty xor" m.m_name)
      in
      set0 b e
    | Model.Compare_to_const (op, c) ->
      let ty = src_ty b 0 in
      set0 b (Ir.Cmp (op, src_expr b 0, num_const ty c))
    | Model.Switch { cmp; threshold } ->
      let data1 = src_expr b 0 and ctrl = src_expr b 1 and data2 = src_expr b 2 in
      (* boolean controls keep their logic structure in the guard so
         that condition / MCDC coverage sees the logic-block inputs *)
      let cond =
        if src_ty b 1 = Value.Tbool then begin
          let ctrl = inline_guard ctrl in
          match cmp with
          | Ir.Gt | Ir.Ge | Ir.Ne when threshold < 1.0 -> ctrl
          | Ir.Eq when threshold >= 1.0 -> ctrl
          | Ir.Eq | Ir.Le | Ir.Lt when threshold <= 0.0 -> Ir.not_ ctrl
          | Ir.Eq | Ir.Ne | Ir.Lt | Ir.Le | Ir.Gt | Ir.Ge ->
            Ir.Cmp (cmp, as_real ctrl, Ir.cr threshold)
        end
        else Ir.Cmp (cmp, as_real (inline_guard ctrl), Ir.cr threshold)
      in
      emit
        (Ir.if_ cond
           [ Ir.assign (port_local path b.id 0) data1 ]
           [ Ir.assign (port_local path b.id 0) data2 ])
    | Model.Multiport_switch { labels } ->
      let sel = src_expr b 0 in
      let n = List.length labels in
      let case_of i label =
        (label, [ Ir.assign (port_local path b.id 0) (src_expr b (1 + i)) ])
      in
      let cases = List.mapi case_of labels in
      let default =
        [ Ir.assign (port_local path b.id 0) (src_expr b (n + 1)) ]
      in
      emit (Ir.switch (Ir.Unop (Ir.To_int, inline_guard sel)) cases default)
    | Model.Unit_delay init ->
      let sname = Fmt.str "%sb%d.z" path b.id in
      add_state ctx (Ir.var Ir.State sname (Ir.ty_of_value init)) init;
      set0 b (Ir.sv sname);
      emit_update (Ir.assign_state sname (src_expr b 0))
    | Model.Delay { initial; length } ->
      let sname = Fmt.str "%sb%d.z" path b.id in
      let ety = Ir.ty_of_value initial in
      let init = Value.Vec (Array.init length (fun _ -> Value.copy initial)) in
      add_state ctx (Ir.var Ir.State sname (Value.Tvec (ety, length))) init;
      set0 b (Ir.index (Ir.sv sname) (Ir.ci 0));
      for i = 0 to length - 2 do
        emit_update
          (Ir.assign_state_idx sname (Ir.ci i)
             (Ir.index (Ir.sv sname) (Ir.ci (i + 1))))
      done;
      emit_update
        (Ir.assign_state_idx sname (Ir.ci (length - 1)) (src_expr b 0))
    | Model.Discrete_integrator { initial; gain; lower; upper } ->
      let sname = Fmt.str "%sb%d.x" path b.id in
      add_state ctx
        (Ir.var Ir.State sname (Value.treal_range lower upper))
        (Value.Real initial);
      set0 b (Ir.sv sname);
      let next = Ir.(sv sname +: (cr gain *: as_real (src_expr b 0))) in
      emit_update
        (Ir.assign_state sname
           Ir.(Binop (Min, cr upper, Binop (Max, cr lower, next))))
    | Model.Counter { initial; modulo } ->
      let sname = Fmt.str "%sb%d.c" path b.id in
      add_state ctx
        (Ir.var Ir.State sname (Value.tint_range 0 (modulo - 1)))
        (Value.Int initial);
      set0 b (Ir.sv sname);
      emit_update
        (Ir.assign_state sname Ir.(Binop (Mod, sv sname +: ci 1, ci modulo)))
    | Model.Data_store_read name -> set0 b (Ir.sv (lookup_store name))
    | Model.Data_store_write name ->
      emit_update (Ir.assign_state (lookup_store name) (src_expr b 0))
    | Model.Data_store_write_element name ->
      emit_update
        (Ir.assign_state_idx (lookup_store name) (src_expr b 0)
           (src_expr b 1))
    | Model.Selector -> set0 b (Ir.index (src_expr b 0) (src_expr b 1))
    | Model.Chart frag ->
      let prefix = Fmt.str "%sb%d.%s" path b.id frag.Ir.f_name in
      let formal_names = List.map (fun (v : Ir.var) -> v.name) frag.Ir.f_inputs in
      let bind_input name =
        match List.find_index (String.equal name) formal_names with
        | Some i -> src_expr b i
        | None -> invalid "%s: chart %s unknown input %s" m.m_name b.bname name
      in
      let out_index =
        List.mapi (fun i (v : Ir.var) -> (v.name, i)) frag.Ir.f_outputs
      in
      let out_local name =
        match List.assoc_opt name out_index with
        | Some i -> port_local path b.id i
        | None -> invalid "%s: chart %s unknown output %s" m.m_name b.bname name
      in
      let states, locals, stmts =
        Ir.instantiate ~prefix ~bind_input ~out_local frag
      in
      List.iter (fun (v, init) -> add_state ctx v init) states;
      List.iter
        (fun (v : Ir.var) ->
          (* Output locals were already declared from the port types. *)
          if not (List.exists (fun (l : Ir.var) -> l.name = v.name) ctx.c_locals)
          then add_local ctx v)
        locals;
      List.iter emit stmts
    | Model.Enabled { sub; held } ->
      let enable = src_expr b 0 in
      let sub_path = Fmt.str "%sb%d/" path b.id in
      let formal_ins, out_names = Model.io_signature sub in
      let bind_sub name =
        match List.find_index (fun (n, _) -> String.equal n name) formal_ins with
        | Some i -> src_expr b (1 + i)
        | None -> invalid "%s: subsystem %s unknown inport %s" m.m_name b.bname name
      in
      let sub_body, sub_out =
        compile_model ctx ~path:sub_path ~store_env ~bind:bind_sub sub
      in
      let assign_outs =
        List.mapi
          (fun i oname ->
            match List.assoc_opt oname sub_out with
            | Some e -> Ir.assign (port_local path b.id i) e
            | None ->
              invalid "%s: subsystem %s missing outport %s" m.m_name b.bname
                oname)
          out_names
      in
      if held then begin
        let hold_states =
          List.mapi
            (fun i ty ->
              let sname = Fmt.str "%sb%d.h%d" path b.id i in
              add_state ctx (Ir.var Ir.State sname ty) (Value.default_of_ty ty);
              sname)
            (Array.to_list types.(b.id))
        in
        let save =
          List.mapi
            (fun i sname -> Ir.assign_state sname (local_of b.id i))
            hold_states
        in
        let restore =
          List.mapi
            (fun i sname -> Ir.assign (port_local path b.id i) (Ir.sv sname))
            hold_states
        in
        emit (Ir.if_ (inline_guard enable) (sub_body @ assign_outs @ save) restore)
      end
      else begin
        let reset =
          List.mapi
            (fun i ty ->
              Ir.assign (port_local path b.id i)
                (Ir.Const (Value.default_of_ty ty)))
            (Array.to_list types.(b.id))
        in
        emit (Ir.if_ (inline_guard enable) (sub_body @ assign_outs) reset)
      end
    | Model.If_else { then_sys; else_sys } ->
      let cond = src_expr b 0 in
      let compile_arm tag sub =
        let sub_path = Fmt.str "%sb%d%s/" path b.id tag in
        let formal_ins, out_names = Model.io_signature sub in
        let bind_sub name =
          match
            List.find_index (fun (n, _) -> String.equal n name) formal_ins
          with
          | Some i -> src_expr b (1 + i)
          | None ->
            invalid "%s: subsystem %s unknown inport %s" m.m_name b.bname name
        in
        let sub_body, sub_out =
          compile_model ctx ~path:sub_path ~store_env ~bind:bind_sub sub
        in
        let assign_outs =
          List.mapi
            (fun i oname ->
              match List.assoc_opt oname sub_out with
              | Some e -> Ir.assign (port_local path b.id i) e
              | None ->
                invalid "%s: subsystem %s missing outport %s" m.m_name
                  b.bname oname)
            out_names
        in
        sub_body @ assign_outs
      in
      let then_stmts = compile_arm "t" then_sys in
      let else_stmts = compile_arm "e" else_sys in
      emit (Ir.if_ (inline_guard cond) then_stmts else_stmts)
    | Model.Case_switch { cases; default } ->
      let sel = src_expr b 0 in
      let compile_arm tag sub =
        let sub_path = Fmt.str "%sb%d%s/" path b.id tag in
        let formal_ins, out_names = Model.io_signature sub in
        let bind_sub name =
          match
            List.find_index (fun (n, _) -> String.equal n name) formal_ins
          with
          | Some i -> src_expr b (1 + i)
          | None ->
            invalid "%s: subsystem %s unknown inport %s" m.m_name b.bname name
        in
        let sub_body, sub_out =
          compile_model ctx ~path:sub_path ~store_env ~bind:bind_sub sub
        in
        let assign_outs =
          List.mapi
            (fun i oname ->
              match List.assoc_opt oname sub_out with
              | Some e -> Ir.assign (port_local path b.id i) e
              | None ->
                invalid "%s: subsystem %s missing outport %s" m.m_name
                  b.bname oname)
            out_names
        in
        sub_body @ assign_outs
      in
      let case_stmts =
        List.map (fun (k, sub) -> (k, compile_arm (Fmt.str "c%d" k) sub)) cases
      in
      let default_stmts =
        match default with
        | Some sub -> compile_arm "d" sub
        | None ->
          List.mapi
            (fun i ty ->
              Ir.assign (port_local path b.id i)
                (Ir.Const (Value.default_of_ty ty)))
            (Array.to_list types.(b.id))
      in
      emit (Ir.switch (Ir.Unop (Ir.To_int, inline_guard sel)) case_stmts default_stmts)
  in
  List.iter (fun id -> compile_block m.blocks.(id)) (topo_order m);
  let body = List.rev !body @ List.rev !updates in
  (body, List.rev !out_bindings)

let to_program (m : Model.t) =
  Model.validate m;
  let ctx = { c_states = []; c_locals = []; fresh = 0; c_defs = Hashtbl.create 256 } in
  let ins, out_names = Model.io_signature m in
  let bind name = Ir.iv name in
  let body, out_bindings = compile_model ctx ~path:"" ~store_env:[] ~bind m in
  let types = Model.infer_port_types m in
  let out_ty name =
    (* Type of the expression feeding the outport. *)
    let rec find i =
      if i >= Array.length m.blocks then Value.treal
      else
        match m.blocks.(i).kind with
        | Model.Outport n when n = name ->
          (match m.blocks.(i).srcs.(0) with
           | Some { Model.s_block; s_port } -> types.(s_block).(s_port)
           | None -> Value.treal)
        | _ -> find (i + 1)
    in
    find 0
  in
  let outputs = List.map (fun n -> Ir.output n (out_ty n)) out_names in
  let out_stmts =
    List.map
      (fun n ->
        match List.assoc_opt n out_bindings with
        | Some e -> Ir.assign_out n e
        | None -> invalid "%s: outport %s not bound" m.m_name n)
      out_names
  in
  let prog =
    Ir.
      {
        name = m.m_name;
        inputs = List.map (fun (n, ty) -> Ir.input n ty) ins;
        outputs;
        states = List.rev ctx.c_states;
        locals = List.rev ctx.c_locals;
        body = body @ out_stmts;
      }
  in
  let prog = Ir.renumber_decisions prog in
  Ir.type_check prog;
  prog
