(** SLIM block diagrams: the Simulink-like modeling layer.

    A model is a set of wired blocks plus named data stores (global
    variables).  Diagrams are hierarchical: conditionally-executed
    subsystems ([Enabled], [If_else], [Case_switch]) contain nested
    models, which is how Simulink models express state-dependent control
    logic — and what produces the deep branch structure STCG targets.

    Diagrams are validated ({!validate}) and compiled to {!Ir.program}
    by {!Compile.to_program}. *)

type sign = Plus | Minus

type factor = Mul | Div

type logic_op = L_and | L_or | L_xor | L_nand | L_nor

type kind =
  | Inport of string * Value.ty
  | Outport of string
  | Constant of Value.t
  | Gain of float
      (** integer-preserving when the gain is integral and input is int *)
  | Sum of sign list
  | Product of factor list
  | Min_max of [ `Min | `Max ] * int
  | Abs
  | Not
  | Saturation of { lower : float; upper : float }
  | Relational of Ir.cmpop
  | Logical of logic_op * int
  | Compare_to_const of Ir.cmpop * float
  | Switch of { cmp : Ir.cmpop; threshold : float }
      (** 3 inputs: data1, control, data2; passes data1 when
          [control cmp threshold] — one decision *)
  | Multiport_switch of { labels : int list }
      (** 2 + n inputs: selector, one data input per label, then the
          default data input — one decision *)
  | Unit_delay of Value.t
  | Delay of { initial : Value.t; length : int }
  | Discrete_integrator of { initial : float; gain : float; lower : float; upper : float }
  | Counter of { initial : int; modulo : int }  (** free-running, 0 inputs *)
  | Data_store_read of string
  | Data_store_write of string
  | Data_store_write_element of string  (** inputs: index, value *)
  | Selector  (** inputs: vector, index *)
  | Chart of Ir.fragment  (** a compiled Stateflow-like chart *)
  | Enabled of { sub : t; held : bool }
      (** first input is the enable signal; when disabled the outputs
          hold their last value ([held]) or reset to defaults *)
  | If_else of { then_sys : t; else_sys : t }
      (** first input is the condition; both subsystems share the same
          I/O signature *)
  | Case_switch of { cases : (int * t) list; default : t option }
      (** first input is the integer selector; all subsystems share the
          same I/O signature *)

and block = {
  id : int;
  bname : string;
  kind : kind;
  srcs : src option array;  (** source port wired to each input port *)
}

and src = { s_block : int; s_port : int }

and t = {
  m_name : string;
  blocks : block array;  (** indexed by block id *)
  stores : (string * Value.ty * Value.t) list;
}

exception Invalid_model of string

val in_arity : kind -> int
val out_arity : kind -> int
val kind_name : kind -> string

val io_signature : t -> (string * Value.ty) list * string list
(** Inport names/types and outport names, in block order. *)

val validate : t -> unit
(** Checks wiring (every input port connected, sources exist), block
    naming, data-store references, subsystem signatures, and infers and
    checks all port types.  Raises {!Invalid_model}. *)

val infer_port_types : t -> Value.ty array array
(** Per-block array of output-port types.  Requires a valid model;
    raises {!Invalid_model} on type errors. *)

val infer_in_env : (string * Value.ty * Value.t) list -> t -> Value.ty array array
(** Like {!infer_port_types} with an environment of data stores declared
    by enclosing models (used when compiling nested subsystems). *)

val block_count : t -> int
(** Total number of blocks including those inside subsystems — the
    paper's Table II "#Block" metric. *)

val pp : t Fmt.t
