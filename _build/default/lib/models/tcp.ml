(* TCP three-way handshake protocol (paper Table II: TCP).

   A server endpoint with four connection slots.  Each incoming segment
   addresses one slot (port field); per slot a connection state machine
   runs CLOSED -> LISTEN -> SYN_RCVD -> ESTABLISHED -> (FIN_WAIT |
   CLOSE_WAIT) -> TIME_WAIT -> CLOSED.

   The deep state dependence the paper highlights for this model: the
   handshake-completing ACK must carry ack-number = ISN+1 where the ISN
   was derived from the client's SYN in an *earlier* step and stored in
   slot state, and sequence numbers must track per-slot expected values
   (mod 32).  Whole-trace solvers must thread those registers through
   every step; STCG reads them off the snapshot ("it is easy to solve
   the relevant branches of the second or the third handshake based on
   the existing handshake states"). *)

module V = Slim.Value
module Ir = Slim.Ir
open Ir

let slots = 4
let seq_mod = 64
let seq_ty = V.tint_range 0 (seq_mod - 1)

(* connection states *)
let s_closed = 0
let s_listen = 1
let s_syn_rcvd = 2
let s_established = 3
let s_fin_wait = 4
let s_close_wait = 5
let s_time_wait = 6

let zero_vec n = V.Vec (Array.make n (V.Int 0))

let cstate k = index (sv "cstate") (ci k)
let isn k = index (sv "isn") (ci k)
let peer_seq k = index (sv "peer_seq") (ci k)
let timer k = index (sv "timer") (ci k)

let set_cstate k e = Assign (Lindex (Lvar (State, "cstate"), ci k), e)
let set_isn k e = Assign (Lindex (Lvar (State, "isn"), ci k), e)
let set_peer_seq k e = Assign (Lindex (Lvar (State, "peer_seq"), ci k), e)
let set_timer k e = Assign (Lindex (Lvar (State, "timer"), ci k), e)

let bump_out name =
  assign_out name (Binop (Min, ci 100, Var (Output, name) +: ci 1))

let next_seq e = Binop (Mod, e +: ci 1, ci seq_mod)

(* Segment handling for slot [k], guarded by [port = k] upstream. *)
let slot_segment k =
  [
    switch (cstate k)
      [
        ( s_closed,
          [
            if_ (iv "listen_cmd")
              [ set_cstate k (ci s_listen) ]
              [ bump_out "rst_tx" (* segment to a closed port *) ];
          ] );
        ( s_listen,
          [
            if_ (iv "syn" &&: not_ (iv "ack"))
              [
                (* record the client ISN; derive and stash our own *)
                set_peer_seq k (iv "seq");
                set_isn k (Binop (Mod, (iv "seq" *: ci 7) +: ci 3, ci seq_mod));
                set_timer k (ci 8);
                set_cstate k (ci s_syn_rcvd);
                bump_out "synack_tx";
              ]
              [ if_ (iv "rst") [] [ bump_out "rst_tx" ] ];
          ] );
        ( s_syn_rcvd,
          [
            if_ (iv "rst")
              [ set_cstate k (ci s_listen) ]
              [
                if_
                  (iv "ack" &&: not_ (iv "syn")
                  &&: (iv "ackno" =: next_seq (isn k))
                  &&: (iv "seq" =: next_seq (peer_seq k)))
                  [
                    (* third handshake: numbers must echo slot state *)
                    set_peer_seq k (iv "seq");
                    set_cstate k (ci s_established);
                    bump_out "established";
                  ]
                  [
                    if_ (iv "ack")
                      [ bump_out "bad_ack" ]
                      [];
                  ];
              ];
          ] );
        ( s_established,
          [
            if_ (iv "rst")
              [ set_cstate k (ci s_closed); bump_out "resets" ]
              [
                if_ (iv "fin")
                  [
                    set_cstate k (ci s_close_wait);
                    set_peer_seq k (next_seq (peer_seq k));
                    bump_out "fin_rx";
                  ]
                  [
                    if_ (iv "close_cmd")
                      [ set_cstate k (ci s_fin_wait); bump_out "fin_tx" ]
                      [
                        (* in-order data advances the window *)
                        if_ (iv "seq" =: next_seq (peer_seq k))
                          [
                            set_peer_seq k (iv "seq");
                            bump_out "data_ok";
                          ]
                          [ bump_out "data_dup" ];
                      ];
                  ];
              ];
          ] );
        ( s_fin_wait,
          [
            if_ (iv "ack" &&: (iv "ackno" =: next_seq (next_seq (isn k))))
              [ set_cstate k (ci s_time_wait); set_timer k (ci 4) ]
              [ if_ (iv "rst") [ set_cstate k (ci s_closed) ] [] ];
          ] );
        ( s_close_wait,
          [
            if_ (iv "close_cmd")
              [ set_cstate k (ci s_time_wait); set_timer k (ci 4); bump_out "fin_tx" ]
              [];
          ] );
      ]
      (* TIME_WAIT: wait out the timer (handled in the tick pass) *)
      [ if_ (iv "rst") [ set_cstate k (ci s_closed) ] [] ];
  ]

(* Per-step timer tick for every slot. *)
let slot_tick k =
  [
    if_ (timer k >: ci 0)
      [
        set_timer k (timer k -: ci 1);
        if_ (timer k =: ci 1)
          [
            (* expiry: half-open handshakes fall back, TIME_WAIT closes *)
            if_ (cstate k =: ci s_syn_rcvd)
              [ set_cstate k (ci s_listen); bump_out "timeouts" ]
              [
                if_ (cstate k =: ci s_time_wait)
                  [ set_cstate k (ci s_closed) ]
                  [];
              ];
          ]
          [];
      ]
      [];
  ]

let count_established =
  [ assign "active" (ci 0) ]
  @ List.map
      (fun k ->
        assign "active"
          (lv "active" +: ite (cstate k =: ci s_established) (ci 1) (ci 0)))
      (List.init slots Fun.id)
  @ [ assign_out "active_conns" (lv "active") ]

let program_uncached () =
  renumber_decisions
    {
      name = "tcp";
      inputs =
        [
          input "port" (V.tint_range 0 (slots - 1));
          input "syn" V.Tbool;
          input "ack" V.Tbool;
          input "fin" V.Tbool;
          input "rst" V.Tbool;
          input "seq" seq_ty;
          input "ackno" seq_ty;
          input "listen_cmd" V.Tbool;
          input "close_cmd" V.Tbool;
        ];
      outputs =
        [
          output "synack_tx" (V.tint_range 0 100);
          output "established" (V.tint_range 0 100);
          output "bad_ack" (V.tint_range 0 100);
          output "rst_tx" (V.tint_range 0 100);
          output "resets" (V.tint_range 0 100);
          output "fin_rx" (V.tint_range 0 100);
          output "fin_tx" (V.tint_range 0 100);
          output "data_ok" (V.tint_range 0 100);
          output "data_dup" (V.tint_range 0 100);
          output "timeouts" (V.tint_range 0 100);
          output "active_conns" (V.tint_range 0 slots);
        ];
      states =
        [
          state "cstate" (V.Tvec (V.tint_range 0 6, slots)) (zero_vec slots);
          state "isn" (V.Tvec (seq_ty, slots)) (zero_vec slots);
          state "peer_seq" (V.Tvec (seq_ty, slots)) (zero_vec slots);
          state "timer" (V.Tvec (V.tint_range 0 8, slots)) (zero_vec slots);
        ];
      locals = [ local "active" (V.tint_range 0 slots) ];
      body =
        [
          switch (iv "port")
            (List.init (slots - 1) (fun k -> (k, slot_segment k)))
            (slot_segment (slots - 1));
        ]
        @ List.concat_map slot_tick (List.init slots Fun.id)
        @ count_established;
    }

let cached = lazy (program_uncached ())
let program () = Lazy.force cached
let description = "TCP three-way handshake protocol"
