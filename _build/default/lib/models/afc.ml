(* Engine air-fuel control system (paper Table II: AFC).

   A block-diagram model in the style of the classic Simulink
   fuel-control demo: throttle / RPM / O2 sensor inputs, a mode chart
   (startup, normal closed-loop, power enrichment, sensor-fail
   open-loop), a closed-loop trim integrator driven by the O2 reading,
   and saturated fuel-command arithmetic.  State dependence comes from
   the mode chart, the warmup counter and the O2 trim integrator. *)

module V = Slim.Value
module Ir = Slim.Ir
module B = Slim.Builder
module C = Stateflow.Chart

(* Mode chart: Startup -(warm)-> Normal <-> Power; any -(o2 fail)->
   Failsafe, which latches until a reset command. *)
let mode_chart () =
  let open Ir in
  C.chart ~name:"afc_mode"
    ~inputs:
      [
        input "warm" V.Tbool;
        input "high_load" V.Tbool;
        input "o2_fail" V.Tbool;
        input "reset" V.Tbool;
      ]
    ~outputs:[ output "mode" (V.tint_range 0 3) ]
    ~data:[ state "warm_ticks" (V.tint_range 0 20) (V.Int 0) ]
    (C.region ~initial:"Startup"
       ~transitions:
         [
           C.trans ~guard:(iv "o2_fail") "Startup" "Failsafe";
           C.trans
             ~guard:(iv "warm" &&: (sv "warm_ticks" >=: ci 3))
             "Startup" "Normal";
           C.trans ~guard:(iv "o2_fail") "Normal" "Failsafe";
           C.trans ~guard:(iv "high_load") "Normal" "Power";
           C.trans ~guard:(iv "o2_fail") "Power" "Failsafe";
           C.trans ~guard:(not_ (iv "high_load")) "Power" "Normal";
           C.trans ~guard:(iv "reset" &&: not_ (iv "o2_fail")) "Failsafe"
             "Startup";
         ]
       [
         C.state "Startup"
           ~entry:
             [ assign_state "warm_ticks" (ci 0); assign_out "mode" (ci 0) ]
           ~during:
             [
               assign_state "warm_ticks"
                 (Binop (Min, ci 20, sv "warm_ticks" +: ci 1));
             ];
         C.state "Normal" ~entry:[ assign_out "mode" (ci 1) ];
         C.state "Power" ~entry:[ assign_out "mode" (ci 2) ];
         C.state "Failsafe" ~entry:[ assign_out "mode" (ci 3) ];
       ])

let model () =
  let b = B.create "afc" in
  let throttle = B.inport b "throttle" (V.treal_range 0.0 100.0) in
  let rpm = B.inport b "rpm" (V.treal_range 0.0 8000.0) in
  let o2 = B.inport b "o2" (V.treal_range 0.0 1.0) in
  let coolant = B.inport b "coolant" (V.treal_range (-40.0) 140.0) in
  let reset = B.inport b "reset" V.Tbool in
  (* derived sensor conditions *)
  let warm = B.compare_const b Ir.Gt 70.0 coolant in
  let high_load = B.compare_const b Ir.Gt 80.0 throttle in
  let o2_low = B.compare_const b Ir.Lt 0.05 o2 in
  let o2_high = B.compare_const b Ir.Gt 0.95 o2 in
  let rpm_alive = B.compare_const b Ir.Gt 200.0 rpm in
  (* the O2 sensor is "failed" when pegged while the engine is running *)
  let pegged = B.or_ b [ o2_low; o2_high ] in
  let o2_fail = B.and_ b [ pegged; rpm_alive ] in
  let frag = Stateflow.Sf_compile.compile (mode_chart ()) in
  let mode =
    match B.chart b frag [ warm; high_load; o2_fail; reset ] with
    | [ m ] -> m
    | _ -> invalid_arg "afc: chart output arity"
  in
  B.outport b "mode" mode;
  (* base fuel: airflow estimate ~ throttle * rpm, scaled and clamped *)
  let airflow = B.prod b [ throttle; rpm ] in
  let base_fuel = B.gain b 0.00002 airflow in
  (* closed-loop trim: integrate the O2 error around stoichiometry *)
  let o2_err = B.diff b o2 (B.const_r b 0.5) in
  let trim =
    B.integrator b ~gain:0.08 ~lower:(-0.3) ~upper:0.3 ~initial:0.0 o2_err
  in
  (* mode-dependent enrichment: normal uses trim; power adds 15%;
     startup runs rich; failsafe runs a fixed open-loop table *)
  let one = B.const_r b 1.0 in
  let rich = B.const_r b 1.25 in
  let power_enrich = B.const_r b 1.15 in
  let corr_normal = B.sum b [ one; trim ] in
  let is_power = B.compare_const b Ir.Eq 2.0 mode in
  let is_startup = B.compare_const b Ir.Eq 0.0 mode in
  let is_failsafe = B.compare_const b Ir.Eq 3.0 mode in
  let corr1 =
    B.switch b ~data1:power_enrich ~control:is_power ~data2:corr_normal ()
  in
  let corr2 = B.switch b ~data1:rich ~control:is_startup ~data2:corr1 () in
  let fuel_raw = B.prod b [ base_fuel; corr2 ] in
  let fuel_closed = B.saturation b ~lower:0.0 ~upper:12.0 fuel_raw in
  (* failsafe open loop: fixed conservative fuel proportional to rpm *)
  let fuel_open = B.saturation b ~lower:0.0 ~upper:6.0 (B.gain b 0.0008 rpm) in
  let fuel =
    B.switch b ~data1:fuel_open ~control:is_failsafe ~data2:fuel_closed ()
  in
  B.outport b "fuel" fuel;
  (* misfire monitor: counts steps with high load but low rpm *)
  let rpm_low = B.compare_const b Ir.Lt 1000.0 rpm in
  let strain = B.and_ b [ high_load; rpm_low ] in
  let strain_d = B.unit_delay b (V.Bool false) strain in
  let misfire = B.and_ b [ strain; strain_d ] in
  B.outport b "misfire" misfire;
  (* knock control: retard timing when knocking under power in the
     resonant rpm band; recover slowly otherwise *)
  let knock = B.inport b "knock" (V.treal_range 0.0 10.0) in
  let knock_high = B.compare_const b Ir.Gt 7.0 knock in
  let band_lo = B.compare_const b Ir.Gt 3000.0 rpm in
  let band_hi = B.compare_const b Ir.Lt 5000.0 rpm in
  let knocking = B.and_ b [ knock_high; band_lo; band_hi; is_power ] in
  let retard_step =
    B.switch b ~data1:(B.const_r b 1.5) ~control:knocking
      ~data2:(B.const_r b (-0.25)) ()
  in
  let retard =
    B.integrator b ~gain:1.0 ~lower:0.0 ~upper:9.0 ~initial:0.0 retard_step
  in
  B.outport b "spark_retard" retard;
  let severe_knock = B.compare_const b Ir.Gt 8.0 retard in
  B.outport b "knock_limit" severe_knock;
  (* mixture diagnostics on the closed-loop trim with hysteresis *)
  let diag_chart =
    let open Ir in
    C.chart ~name:"afc_diag"
      ~inputs:[ input "trim_in" (V.treal_range (-0.3) 0.3); input "cl" V.Tbool ]
      ~outputs:[ output "diag" (V.tint_range 0 2) ]
      (C.region ~initial:"Ok"
         ~transitions:
           [
             C.trans ~guard:(iv "cl" &&: (iv "trim_in" >: cr 0.25)) "Ok" "Lean";
             C.trans
               ~guard:(iv "cl" &&: (iv "trim_in" <: cr (-0.25)))
               "Ok" "Rich";
             C.trans ~guard:(iv "trim_in" <: cr 0.1) "Lean" "Ok";
             C.trans ~guard:(iv "trim_in" >: cr (-0.1)) "Rich" "Ok";
           ]
         [
           C.state "Ok" ~entry:[ assign_out "diag" (ci 0) ];
           C.state "Lean" ~entry:[ assign_out "diag" (ci 1) ];
           C.state "Rich" ~entry:[ assign_out "diag" (ci 2) ];
         ])
  in
  let is_normal = B.compare_const b Ir.Eq 1.0 mode in
  let diag =
    match
      B.chart b (Stateflow.Sf_compile.compile diag_chart) [ trim; is_normal ]
    with
    | [ d ] -> d
    | _ -> invalid_arg "afc: diag chart output arity"
  in
  B.outport b "diag" diag;
  (* redundant safety check: the fuel command is saturated to 12.0 just
     above, so the overflow cutoff can never trip - dead logic of the
     kind the paper's Discussion reports finding in industry models *)
  let overflow = B.compare_const b Ir.Gt 12.5 fuel_closed in
  let cutoff =
    B.switch b ~data1:(B.const_r b 0.0) ~control:overflow ~data2:fuel ()
  in
  B.outport b "fuel_final" cutoff;
  B.finish b

let cached = lazy (Slim.Compile.to_program (model ()))
let program () = Lazy.force cached
let description = "Engine air-fuel control system"
