(* LED matrix load control (paper Table II: LEDLC).

   Four LED banks, each in one of four brightness states (off / low /
   mid / high).  Commands step one bank up or down or set a level;
   bank currents derive from the brightness state through a Switch-Case
   ladder that — exactly as the paper reports for the real model —
   carries an extra default port that can never fire, because the state
   domain has only the four encoded values.  An overcurrent monitor
   sheds load from the brightest bank; sustained high drive trips a
   per-bank thermal derate. *)

module V = Slim.Value
module Ir = Slim.Ir
open Ir

let banks = 4
let state_ty = V.tint_range 0 3
let zero_vec n = V.Vec (Array.make n (V.Int 0))

let led k = index (sv "led") (ci k)
let heat k = index (sv "heat") (ci k)
let set_led k e = Assign (Lindex (Lvar (State, "led"), ci k), e)
let set_heat k e = Assign (Lindex (Lvar (State, "heat"), ci k), e)

(* Current draw per brightness state; the default arm is unreachable
   (led state is always 0..3) — deliberate dead logic (paper, Sec. IV:
   "the Switch-Case block ... has an additional default port"). *)
let bank_current k local =
  switch (led k)
    [
      (0, [ assign local (ci 0) ]);
      (1, [ assign local (ci 2) ]);
      (2, [ assign local (ci 5) ]);
      (3, [ assign local (ci 9) ]);
    ]
    [ assign local (ci 12) ]

(* Commands travel on a shared bus protected by a checksum: a command
   is applied only when the [check] field equals bank*29 + cmd*5 +
   level + 11 — a random bus almost never guesses it, while a
   constraint solver reads it straight off the equality. *)
let checksum_ok =
  iv "check" =: (iv "bank" *: ci 29) +: (iv "cmd" *: ci 5) +: iv "level" +: ci 11

(* Apply the command to the selected bank. *)
let apply_command k =
  [
    if_ (iv "bank" =: ci k &&: iv "enable" &&: checksum_ok)
      [
        switch (iv "cmd")
          [
            (1, [ set_led k (Binop (Min, ci 3, led k +: ci 1)) ]);
            (2, [ set_led k (Binop (Max, ci 0, led k -: ci 1)) ]);
            (3, [ set_led k (iv "level") ]);
            (4, [ set_led k (ci 0) ]);
          ]
          [ (* nop *) ];
      ]
      [];
  ]

(* Thermal bookkeeping per bank: high drive heats, otherwise cool. *)
let thermal k =
  [
    if_ (led k =: ci 3)
      [ set_heat k (Binop (Min, ci 10, heat k +: ci 2)) ]
      [ set_heat k (Binop (Max, ci 0, heat k -: ci 1)) ];
    if_ (heat k >=: ci 9)
      [
        (* thermal derate: force the bank down one level *)
        set_led k (Binop (Max, ci 0, led k -: ci 1));
        assign_state "derates" (Binop (Min, ci 50, sv "derates" +: ci 1));
      ]
      [];
  ]

(* Shed load when the total current exceeds the supply budget: find the
   brightest bank and step it down. *)
let shed =
  [ assign "bright" (ci 0); assign "bright_level" (led 0) ]
  @ List.concat_map
      (fun k ->
        [
          if_ (led k >: lv "bright_level")
            [ assign "bright" (ci k); assign "bright_level" (led k) ]
            [];
        ])
      (List.init (banks - 1) (fun k -> k + 1))
  @ [
      switch (lv "bright")
        (List.init banks (fun k ->
             (k, [ set_led k (Binop (Max, ci 0, led k -: ci 1)) ])))
        [];
      assign_state "sheds" (Binop (Min, ci 50, sv "sheds" +: ci 1));
    ]

let program_uncached () =
  let currents =
    List.concat_map
      (fun k -> [ bank_current k (Fmt.str "cur%d" k) ])
      (List.init banks Fun.id)
  in
  let total =
    List.fold_left
      (fun acc k -> acc +: lv (Fmt.str "cur%d" k))
      (lv "cur0")
      (List.init (banks - 1) (fun k -> k + 1))
  in
  renumber_decisions
    {
      name = "ledlc";
      inputs =
        [
          input "enable" V.Tbool;
          input "bank" (V.tint_range 0 (banks - 1));
          input "cmd" (V.tint_range 0 5);
          input "level" state_ty;
          input "budget" (V.tint_range 10 120);
          input "check" (V.tint_range 0 255);
        ];
      outputs =
        [
          output "total_current" (V.tint_range 0 50);
          output "overload" V.Tbool;
          output "brightest" (V.tint_range 0 (banks - 1));
        ];
      states =
        [
          state "led" (V.Tvec (state_ty, banks)) (zero_vec banks);
          state "heat" (V.Tvec (V.tint_range 0 10, banks)) (zero_vec banks);
          state "sheds" (V.tint_range 0 50) (V.Int 0);
          state "derates" (V.tint_range 0 50) (V.Int 0);
        ];
      locals =
        List.init banks (fun k -> local (Fmt.str "cur%d" k) (V.tint_range 0 12))
        @ [
            local "bright" (V.tint_range 0 (banks - 1));
            local "bright_level" state_ty;
            local "total" (V.tint_range 0 50);
          ];
      body =
        List.concat_map apply_command (List.init banks Fun.id)
        @ List.concat_map thermal (List.init banks Fun.id)
        @ currents
        @ [ assign "total" total; assign_out "total_current" (lv "total") ]
        @ [
            if_ (lv "total" >: iv "budget")
              (assign_out "overload" (cb true) :: shed)
              [ assign_out "overload" (cb false) ];
          ]
        @ [ assign "bright" (ci 0); assign "bright_level" (led 0) ]
        @ List.concat_map
            (fun k ->
              [
                if_ (led k >: lv "bright_level")
                  [ assign "bright" (ci k); assign "bright_level" (led k) ]
                  [];
              ])
            (List.init (banks - 1) (fun k -> k + 1))
        @ [ assign_out "brightest" (lv "bright") ];
    }

let cached = lazy (program_uncached ())
let program () = Lazy.force cached
let description = "LED matrix load control"
