(* Train wheel speed controller (paper Table II: TWC).

   A hierarchical mode chart: Idle, Active (with Accel / Cruise / Coast
   / Brake sub-modes), wheel-slip control and an emergency brake mode.
   Speed is an internal state advanced by mode-specific during actions;
   leaving Emergency requires the train to have actually stopped, so the
   exit is reachable only through a multi-step braking trajectory —
   exactly the state-dependent coverage the paper targets.

   Per-axle slip warnings are unrolled conditional actions over a
   4-entry state vector. *)

module V = Slim.Value
module Ir = Slim.Ir
module C = Stateflow.Chart
open Ir

let axles = 4

let speed_ty = V.tint_range 0 400  (* 0.1 m/s units *)

let axle_delta k = iv (Fmt.str "w%d" k)

(* worst slip over all axles *)
let max_slip =
  let rec go k acc = if k >= axles then acc else go (k + 1) (Binop (Max, acc, axle_delta k)) in
  go 1 (axle_delta 0)

(* per-axle warning latches, set when an axle slips hard *)
let axle_checks =
  List.concat_map
    (fun k ->
      [
        if_ (axle_delta k >: ci 20)
          [ Assign (Lindex (Lvar (State, "axle_warn"), ci k), ci 1) ]
          [];
      ])
    (List.init axles Fun.id)

let accel_rate = ite (iv "rail_wet") (ci 3) (ci 6)

let clamp_speed e = Binop (Min, ci 400, Binop (Max, ci 0, e))

let chart () =
  C.chart ~name:"twc"
    ~inputs:
      ([
         input "cmd" (V.tint_range 0 3);
         (* 0 idle, 1 run, 2 brake, 3 emergency stop *)
         input "target" (V.tint_range 0 300);
         input "rail_wet" V.Tbool;
       ]
      @ List.init axles (fun k -> input (Fmt.str "w%d" k) (V.tint_range 0 50)))
    ~outputs:
      [
        output "mode" (V.tint_range 0 6);
        output "motor" (V.tint_range 0 100);
        output "brake" (V.tint_range 0 100);
      ]
    ~data:
      [
        state "speed" speed_ty (V.Int 0);
        state "slip_count" (V.tint_range 0 5) (V.Int 0);
        state "axle_warn" (V.Tvec (V.tint_range 0 1, axles))
          (V.Vec (Array.make axles (V.Int 0)));
      ]
    (C.region ~initial:"Idle"
       ~transitions:
         [
           C.trans ~guard:(iv "cmd" =: ci 1 &&: (iv "target" >: ci 0)) "Idle"
             "Active";
           C.trans ~guard:(iv "cmd" =: ci 3 ||: (sv "speed" >: ci 350))
             "Active" "Emergency";
           C.trans
             ~guard:(max_slip >: ci 15 &&: (sv "speed" >: ci 20))
             "Active" "Slip"
             ~action:
               [
                 assign_state "slip_count"
                   (Binop (Min, ci 5, sv "slip_count" +: ci 1));
               ];
           C.trans
             ~guard:(iv "cmd" =: ci 0 &&: (sv "speed" =: ci 0))
             "Active" "Idle";
           C.trans ~guard:(sv "slip_count" >=: ci 3) "Slip" "Emergency";
           C.trans
             ~guard:(max_slip <: ci 5 &&: (sv "slip_count" <: ci 3))
             "Slip" "Active";
           C.trans ~guard:(iv "cmd" =: ci 3) "Slip" "Emergency";
           (* leaving Emergency needs a full stop AND an explicit reset *)
           C.trans
             ~guard:(sv "speed" =: ci 0 &&: (iv "cmd" =: ci 0))
             "Emergency" "Idle"
             ~action:[ assign_state "slip_count" (ci 0) ];
         ]
       [
         C.state "Idle"
           ~entry:
             [
               assign_out "mode" (ci 0);
               assign_out "motor" (ci 0);
               assign_out "brake" (ci 0);
             ];
         C.state "Active"
           ~during:axle_checks
           ~children:
             (C.region ~initial:"Accel"
                ~transitions:
                  [
                    C.trans
                      ~guard:(sv "speed" >=: (iv "target" -: ci 5))
                      "Accel" "Cruise";
                    C.trans
                      ~guard:(sv "speed" <: (iv "target" -: ci 15))
                      "Cruise" "Accel";
                    C.trans
                      ~guard:(sv "speed" >: (iv "target" +: ci 10))
                      "Cruise" "Coast";
                    C.trans
                      ~guard:(sv "speed" <=: (iv "target" +: ci 2))
                      "Coast" "Cruise";
                    C.trans ~guard:(iv "cmd" =: ci 2) "Accel" "Braking";
                    C.trans ~guard:(iv "cmd" =: ci 2) "Cruise" "Braking";
                    C.trans ~guard:(iv "cmd" =: ci 2) "Coast" "Braking";
                    C.trans ~guard:(iv "cmd" =: ci 1) "Braking" "Accel";
                  ]
                [
                  C.state "Accel"
                    ~entry:[ assign_out "mode" (ci 1) ]
                    ~during:
                      [
                        assign_state "speed"
                          (clamp_speed (sv "speed" +: accel_rate));
                        assign_out "motor"
                          (Binop (Min, ci 100, sv "speed" /: ci 4 +: ci 40));
                        assign_out "brake" (ci 0);
                      ];
                  C.state "Cruise"
                    ~entry:[ assign_out "mode" (ci 2) ]
                    ~during:
                      [
                        if_ (sv "speed" <: iv "target")
                          [ assign_state "speed" (clamp_speed (sv "speed" +: ci 1)) ]
                          [ assign_state "speed" (clamp_speed (sv "speed" -: ci 1)) ];
                        assign_out "motor" (ci 30);
                        assign_out "brake" (ci 0);
                      ];
                  C.state "Coast"
                    ~entry:[ assign_out "mode" (ci 3); assign_out "motor" (ci 0) ]
                    ~during:
                      [ assign_state "speed" (clamp_speed (sv "speed" -: ci 2)) ];
                  C.state "Braking"
                    ~entry:
                      [ assign_out "mode" (ci 4); assign_out "motor" (ci 0) ]
                    ~during:
                      [
                        assign_state "speed" (clamp_speed (sv "speed" -: ci 12));
                        assign_out "brake"
                          (ite (iv "rail_wet") (ci 60) (ci 80));
                      ];
                ]);
         C.state "Slip"
           ~entry:
             [
               assign_out "mode" (ci 5);
               assign_out "motor" (ci 0);
               assign_out "brake" (ci 20);
             ]
           ~during:
             ([ assign_state "speed" (clamp_speed (sv "speed" -: ci 8)) ]
             @ axle_checks);
         C.state "Emergency"
           ~entry:
             [
               assign_out "mode" (ci 6);
               assign_out "motor" (ci 0);
               assign_out "brake" (ci 100);
             ]
           ~during:
             [ assign_state "speed" (clamp_speed (sv "speed" -: ci 20)) ];
       ])

let cached = lazy (Stateflow.Sf_compile.to_program (chart ()))
let program () = Lazy.force cached
let description = "Train wheel speed controller"
