(* LAN switch controller (paper Table II: LANSwitch).

   A 4-port learning switch with an 8-entry MAC table and per-port VLAN
   membership.  Per step one frame arrives: (src, dst, in_port, vlan,
   valid).  The switch

   - validates the frame (valid flag, port up, VLAN membership),
   - learns the source address (update an existing entry, else claim a
     free slot, else evict the oldest),
   - forwards by destination lookup (same-VLAN entries only), flooding
     on a miss, dropping when the entry points back to the ingress port,
   - ages entries and maintains counters.

   Forwarding and deletion succeed only in states where a matching
   learn happened earlier — the LAN-switch version of the paper's
   "add data first and then modify data" pattern. *)

module V = Slim.Value
module Ir = Slim.Ir
open Ir

let table_size = 6
let ports = 4
let mac_ty = V.tint_range 0 65535  (* 0 = no address *)
let port_ty = V.tint_range 0 (ports - 1)
let vlan_ty = V.tint_range 0 3
let age_ty = V.tint_range 0 15

let zero_vec n = V.Vec (Array.make n (V.Int 0))

let t_mac k = index (sv "t_mac") (ci k)
let t_port k = index (sv "t_port") (ci k)
let t_vlan k = index (sv "t_vlan") (ci k)
let t_age k = index (sv "t_age") (ci k)

let set_entry k ~mac ~port ~vlan ~age =
  [
    Assign (Lindex (Lvar (State, "t_mac"), ci k), mac);
    Assign (Lindex (Lvar (State, "t_port"), ci k), port);
    Assign (Lindex (Lvar (State, "t_vlan"), ci k), vlan);
    Assign (Lindex (Lvar (State, "t_age"), ci k), age);
  ]

let chain mk finally =
  let rec go k = if k >= table_size then finally else mk k (go (k + 1)) in
  go 0

(* Port -> VLAN membership (a fixed provisioning table): port p is a
   member of vlan v when the bit is set below. *)
let port_in_vlan p v =
  match p, v with
  | 0, (0 | 1) -> true
  | 1, (0 | 2) -> true
  | 2, (1 | 2 | 3) -> true
  | 3, 0 -> true
  | _ -> false

let vlan_check_ok =
  (* membership of (in_port, vlan) as an unrolled decision ladder *)
  let term p v = iv "in_port" =: ci p &&: (iv "vlan" =: ci v) in
  let allowed =
    List.concat_map
      (fun p ->
        List.filter_map
          (fun v -> if port_in_vlan p v then Some (term p v) else None)
          [ 0; 1; 2; 3 ])
      [ 0; 1; 2; 3 ]
  in
  disj allowed

(* Learning: refresh an existing entry for src, else take a free slot,
   else evict the entry with the smallest age. *)
let learn_src =
  let refresh =
    chain
      (fun k rest ->
        [
          if_ (t_mac k =: iv "src")
            [
              Assign (Lindex (Lvar (State, "t_port"), ci k), iv "in_port");
              Assign (Lindex (Lvar (State, "t_vlan"), ci k), iv "vlan");
              Assign (Lindex (Lvar (State, "t_age"), ci k), ci 15);
              assign "learned" (cb true);
            ]
            rest;
        ])
      []
  in
  let insert =
    chain
      (fun k rest ->
        [
          if_ (t_mac k =: ci 0)
            (set_entry k ~mac:(iv "src") ~port:(iv "in_port")
               ~vlan:(iv "vlan") ~age:(ci 15)
            @ [ assign "learned" (cb true) ])
            rest;
        ])
      (* table full: evict slot with minimum age (computed scan) *)
      ([
         assign "victim" (ci 0);
         assign "victim_age" (t_age 0);
       ]
      @ List.concat_map
          (fun k ->
            [
              if_ (t_age k <: lv "victim_age")
                [ assign "victim" (ci k); assign "victim_age" (t_age k) ]
                [];
            ])
          (List.init (table_size - 1) (fun k -> k + 1))
      @ [
          Assign (Lindex (Lvar (State, "t_mac"), lv "victim"), iv "src");
          Assign (Lindex (Lvar (State, "t_port"), lv "victim"), iv "in_port");
          Assign (Lindex (Lvar (State, "t_vlan"), lv "victim"), iv "vlan");
          Assign (Lindex (Lvar (State, "t_age"), lv "victim"), ci 15);
          assign_state "evictions" (Binop (Min, ci 50, sv "evictions" +: ci 1));
        ])
  in
  [
    assign "learned" (cb false);
    if_ (iv "src" <>: ci 0)
      (refresh @ [ if_ (not_ (lv "learned")) insert [] ])
      [];
  ]

(* Forwarding: look the destination up among same-VLAN entries. *)
let forward =
  let lookup =
    chain
      (fun k rest ->
        [
          if_ (t_mac k =: iv "dst" &&: (t_vlan k =: iv "vlan"))
            [ assign "out_port" (t_port k); assign "hit" (cb true) ]
            rest;
        ])
      []
  in
  [ assign "hit" (cb false); assign "out_port" (ci 0) ]
  @ lookup
  @ [
      if_ (lv "hit")
        [
          if_ (lv "out_port" =: iv "in_port")
            [
              (* destination is on the ingress port: filter *)
              assign_out "action" (ci 2);
              assign_state "filtered"
                (Binop (Min, ci 50, sv "filtered" +: ci 1));
            ]
            [ assign_out "action" (ci 1); assign_out "egress" (lv "out_port") ];
        ]
        [
          (* unknown destination: flood the VLAN *)
          assign_out "action" (ci 3);
          assign_state "floods" (Binop (Min, ci 50, sv "floods" +: ci 1));
        ];
    ]

(* Aging: tick entry ages down; expire at zero. *)
let aging =
  List.concat_map
    (fun k ->
      [
        if_ (t_mac k <>: ci 0)
          [
            if_ (t_age k >: ci 0)
              [ Assign (Lindex (Lvar (State, "t_age"), ci k), t_age k -: ci 1) ]
              (set_entry k ~mac:(ci 0) ~port:(ci 0) ~vlan:(ci 0) ~age:(ci 0)
              @ [
                  assign_state "expired"
                    (Binop (Min, ci 50, sv "expired" +: ci 1));
                ]);
          ]
          [];
      ])
    (List.init table_size Fun.id)

let program_uncached () =
  renumber_decisions
    {
      name = "lanswitch";
      inputs =
        [
          input "valid" V.Tbool;
          input "src" mac_ty;
          input "dst" mac_ty;
          input "in_port" port_ty;
          input "vlan" vlan_ty;
        ];
      outputs =
        [
          output "action" (V.tint_range 0 3);
          (* 0 none/drop, 1 forward, 2 filter, 3 flood *)
          output "egress" port_ty;
          output "table_load" (V.tint_range 0 table_size);
        ];
      states =
        [
          state "t_mac" (V.Tvec (mac_ty, table_size)) (zero_vec table_size);
          state "t_port" (V.Tvec (port_ty, table_size)) (zero_vec table_size);
          state "t_vlan" (V.Tvec (vlan_ty, table_size)) (zero_vec table_size);
          state "t_age" (V.Tvec (age_ty, table_size)) (zero_vec table_size);
          state "floods" (V.tint_range 0 50) (V.Int 0);
          state "filtered" (V.tint_range 0 50) (V.Int 0);
          state "expired" (V.tint_range 0 50) (V.Int 0);
          state "evictions" (V.tint_range 0 50) (V.Int 0);
          state "drops" (V.tint_range 0 50) (V.Int 0);
        ];
      locals =
        [
          local "learned" V.Tbool;
          local "hit" V.Tbool;
          local "out_port" port_ty;
          local "victim" (V.tint_range 0 (table_size - 1));
          local "victim_age" age_ty;
          local "load" (V.tint_range 0 table_size);
        ];
      body =
        [
          assign_out "action" (ci 0);
          if_ (iv "valid")
            [
              if_ vlan_check_ok
                (learn_src @ forward)
                [
                  (* VLAN violation *)
                  assign_state "drops" (Binop (Min, ci 50, sv "drops" +: ci 1));
                ];
            ]
            [];
        ]
        @ aging
        @ [ assign "load" (ci 0) ]
        @ List.map
            (fun k ->
              assign "load" (lv "load" +: ite (t_mac k <>: ci 0) (ci 1) (ci 0)))
            (List.init table_size Fun.id)
        @ [ assign_out "table_load" (lv "load") ];
    }

let cached = lazy (program_uncached ())
let program () = Lazy.force cached
let description = "LAN switch controller"
