lib/models/afc.ml: Lazy Slim Stateflow
