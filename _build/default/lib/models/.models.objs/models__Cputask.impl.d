lib/models/cputask.ml: Array Lazy List Slim
