lib/models/nicprotocol.ml: Lazy Slim Stateflow
