lib/models/twc.ml: Array Fmt Fun Lazy List Slim Stateflow
