lib/models/ledlc.ml: Array Fmt Fun Lazy List Slim
