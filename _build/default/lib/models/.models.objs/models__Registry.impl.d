lib/models/registry.ml: Afc Cputask Lanswitch Ledlc List Nicprotocol Slim String Tcp Twc Utpc
