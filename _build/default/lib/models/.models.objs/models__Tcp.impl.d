lib/models/tcp.ml: Array Fun Lazy List Slim
