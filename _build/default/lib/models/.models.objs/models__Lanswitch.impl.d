lib/models/lanswitch.ml: Array Fun Lazy List Slim
