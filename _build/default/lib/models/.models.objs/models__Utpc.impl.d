lib/models/utpc.ml: Fmt Lazy List Slim Stateflow
