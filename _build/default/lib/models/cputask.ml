(* AutoSAR CPU task dispatch system (paper Table II: CPUTask).

   A task queue of [slots] entries, each holding (task id, priority,
   deadline).  Opcode-driven interface, one operation per step:

     op=1 Add     (id, prio, deadline)  - fails when the queue is full
                                          or the id is already present
     op=2 Delete  (id)                  - fails when no entry matches
     op=3 Modify  (id, prio)            - fails when no entry matches
     op=4 Check   (id, prio)            - succeeds when an entry matches
                                          id AND priority
     other        invalid operation

   A dispatcher picks the highest-priority ready task each step and
   tracks preemption of the running task.  All queue operations are
   unrolled per slot, which is where the deep, state-dependent branch
   structure comes from: Delete/Modify/Check succeed only from states
   where a matching Add happened earlier — the paper's Figure 1. *)

module V = Slim.Value
module Ir = Slim.Ir
open Ir

let slots = 5
let id_ty = V.tint_range 0 9999
let prio_ty = V.tint_range 0 7
let deadline_ty = V.tint_range 0 100

let zero_vec n = V.Vec (Array.make n (V.Int 0))

(* fold an if-chain over slot indices: [mk k rest] builds the statement
   list for slot [k] with [rest] as the else-continuation *)
let slot_chain mk finally =
  let rec go k = if k >= slots then finally else mk k (go (k + 1)) in
  go 0

let q_id k = index (sv "q_id") (ci k)
let q_prio k = index (sv "q_prio") (ci k)
let q_used k = index (sv "q_used") (ci k)

let set_slot k ~id ~prio ~deadline ~used =
  [
    Assign (Lindex (Lvar (State, "q_id"), ci k), id);
    Assign (Lindex (Lvar (State, "q_prio"), ci k), prio);
    Assign (Lindex (Lvar (State, "q_deadline"), ci k), deadline);
    Assign (Lindex (Lvar (State, "q_used"), ci k), used);
  ]

(* Add: reject duplicates, then take the first free slot. *)
let add_op =
  let dup_check rest =
    slot_chain
      (fun k rest' ->
        [
          if_ (q_used k =: ci 1 &&: (q_id k =: iv "id"))
            [ assign_out "status" (ci 3) (* duplicate id *) ]
            rest';
        ])
      rest
  in
  let insert =
    slot_chain
      (fun k rest' ->
        [
          if_ (q_used k =: ci 0)
            (set_slot k ~id:(iv "id") ~prio:(iv "prio")
               ~deadline:(iv "deadline") ~used:(ci 1)
            @ [
                assign_state "count" (sv "count" +: ci 1);
                assign_out "status" (ci 1) (* added *);
              ])
            rest';
        ])
      [ assign_out "status" (ci 2) (* full *) ]
  in
  dup_check insert

(* Delete: clear the first slot whose id matches. *)
let delete_op =
  slot_chain
    (fun k rest ->
      [
        if_ (q_used k =: ci 1 &&: (q_id k =: iv "id"))
          (set_slot k ~id:(ci 0) ~prio:(ci 0) ~deadline:(ci 0) ~used:(ci 0)
          @ [
              assign_state "count" (Binop (Max, ci 0, sv "count" -: ci 1));
              if_ (sv "running" =: iv "id")
                [ assign_state "running" (ci 0) ]
                [];
              assign_out "status" (ci 1) (* deleted *);
            ])
          rest;
      ])
    [ assign_out "status" (ci 4) (* not found *) ]

(* Modify: update the priority of a matching entry; bump a revision
   counter so modified states are distinguishable. *)
let modify_op =
  slot_chain
    (fun k rest ->
      [
        if_ (q_used k =: ci 1 &&: (q_id k =: iv "id"))
          [
            Assign (Lindex (Lvar (State, "q_prio"), ci k), iv "prio");
            assign_state "revision"
              (Binop (Mod, sv "revision" +: ci 1, ci 64));
            assign_out "status" (ci 1) (* modified *);
          ]
          rest;
      ])
    [ assign_out "status" (ci 4) (* not found *) ]

(* Check: succeed only when id and priority both match. *)
let check_op =
  slot_chain
    (fun k rest ->
      [
        if_ (q_used k =: ci 1 &&: (q_id k =: iv "id"))
          [
            if_ (q_prio k =: iv "prio")
              [ assign_out "status" (ci 1) (* check ok *) ]
              [ assign_out "status" (ci 5) (* wrong priority *) ];
          ]
          rest;
      ])
    [ assign_out "status" (ci 4) (* not found *) ]

(* Dispatcher: select the highest-priority used slot; preempt the
   running task when a strictly higher priority task exists. *)
let dispatch =
  (* seed the scan from slot 0 (no decision: a slot-0 "higher priority"
     test against the empty seed could never be false) *)
  [
    assign "best_prio" (ite (q_used 0 =: ci 1) (q_prio 0) (ci (-1)));
    assign "best_id" (ite (q_used 0 =: ci 1) (q_id 0) (ci 0));
  ]
  @ List.concat_map
      (fun k ->
        [
          if_ (q_used k =: ci 1 &&: (q_prio k >: lv "best_prio"))
            [ assign "best_prio" (q_prio k); assign "best_id" (q_id k) ]
            [];
        ])
      (List.init (slots - 1) (fun k -> k + 1))
  @ [
      if_ (lv "best_id" <>: ci 0)
        [
          if_ (sv "running" =: ci 0)
            [ assign_state "running" (lv "best_id") ]
            [
              if_ (lv "best_id" <>: sv "running")
                [
                  (* preemption: count and switch *)
                  assign_state "preemptions"
                    (Binop (Min, ci 100, sv "preemptions" +: ci 1));
                  assign_state "running" (lv "best_id");
                ]
                [];
            ];
        ]
        [];
      assign_out "running_task" (sv "running");
      assign_out "queue_count" (sv "count");
    ]

let program_uncached () =
  renumber_decisions
    {
      name = "cputask";
      inputs =
        [
          input "op" (V.tint_range 0 5);
          input "id" (V.tint_range 1 9999);
          input "prio" prio_ty;
          input "deadline" deadline_ty;
        ];
      outputs =
        [
          output "status" (V.tint_range 0 5);
          output "running_task" id_ty;
          output "queue_count" (V.tint_range 0 slots);
        ];
      states =
        [
          state "q_id" (V.Tvec (id_ty, slots)) (zero_vec slots);
          state "q_prio" (V.Tvec (prio_ty, slots)) (zero_vec slots);
          state "q_deadline" (V.Tvec (deadline_ty, slots)) (zero_vec slots);
          state "q_used" (V.Tvec (V.tint_range 0 1, slots)) (zero_vec slots);
          state "count" (V.tint_range 0 slots) (V.Int 0);
          state "running" id_ty (V.Int 0);
          state "preemptions" (V.tint_range 0 100) (V.Int 0);
          state "revision" (V.tint_range 0 63) (V.Int 0);
        ];
      locals =
        [
          local "best_prio" (V.tint_range (-1) 7);
          local "best_id" id_ty;
        ];
      body =
        [
          assign_out "status" (ci 0);
          switch (iv "op")
            [ (1, add_op); (2, delete_op); (3, modify_op); (4, check_op) ]
            [ assign_out "status" (ci 0) (* invalid op *) ];
        ]
        @ dispatch;
    }

let cached = lazy (program_uncached ())
let program () = Lazy.force cached

let description = "AutoSAR CPU task dispatch system"
