(* Vehicle NIC communication protocol (paper Table II: NICProtocol).

   Link-layer session machine: Down -> Negotiate -> Auth -> Up, with an
   Error state and retry counting.  The deep, state-dependent logic:

   - the session token granted during authentication is stored in chart
     data, and every subsequent data frame must carry the same token;
   - data frames must arrive with the expected sequence number, which
     increments (mod 16) on every accepted frame.

   A whole-trace solver must reason about the token/sequence registers
   across many steps; state-aware solving reads them off the snapshot. *)

module V = Slim.Value
module Ir = Slim.Ir
module C = Stateflow.Chart
open Ir

(* frame types *)
let f_none = 0
let f_beacon = 1
let f_auth_req = 2
let f_auth_ack = 3
let f_data = 4
let f_disconnect = 5

let chart () =
  C.chart ~name:"nicprotocol"
    ~inputs:
      [
        input "frame" (V.tint_range 0 6);
        input "crc_ok" V.Tbool;
        input "seq" (V.tint_range 0 63);
        input "token" (V.tint_range 0 4095);
      ]
    ~outputs:
      [
        output "link" (V.tint_range 0 4);
        output "tx" (V.tint_range 0 5);
        output "accepted" (V.tint_range 0 100);
        output "dropped" (V.tint_range 0 100);
      ]
    ~data:
      [
        state "expected_seq" (V.tint_range 0 63) (V.Int 0);
        state "session" (V.tint_range 0 4095) (V.Int 0);
        state "retries" (V.tint_range 0 3) (V.Int 0);
        state "beacons" (V.tint_range 0 7) (V.Int 0);
        state "idle" (V.tint_range 0 7) (V.Int 0);
        state "burst" (V.tint_range 0 7) (V.Int 0);
      ]
    (C.region ~initial:"Down"
       ~transitions:
         [
           (* link comes up after two clean beacons *)
           C.trans
             ~guard:
               (iv "frame" =: ci f_beacon &&: iv "crc_ok"
               &&: (sv "beacons" >=: ci 1))
             "Down" "Negotiate"
             ~action:[ assign_out "tx" (ci f_beacon) ];
           C.trans
             ~guard:(iv "frame" =: ci f_auth_req &&: iv "crc_ok")
             "Negotiate" "Auth"
             ~action:
               [
                 (* grant the session token carried by the request *)
                 assign_state "session" (iv "token");
                 assign_out "tx" (ci f_auth_ack);
               ];
           C.trans
             ~guard:(not_ (iv "crc_ok") &&: (iv "frame" <>: ci f_none))
             "Negotiate" "Down";
           (* the ack must echo the granted token *)
           C.trans
             ~guard:
               (iv "frame" =: ci f_auth_ack &&: iv "crc_ok"
               &&: (iv "token" =: sv "session"))
             "Auth" "Up"
             ~action:[ assign_state "expected_seq" (ci 0) ];
           C.trans
             ~guard:
               (iv "frame" =: ci f_auth_ack &&: (iv "token" <>: sv "session"))
             "Auth" "Error"
             ~action:
               [
                 assign_state "retries"
                   (Binop (Min, ci 3, sv "retries" +: ci 1));
               ];
           C.trans ~guard:(iv "frame" =: ci f_disconnect) "Up" "Down"
             ~action:[ assign_out "tx" (ci f_disconnect) ];
           (* keepalive: the link drops after 5 consecutive idle steps *)
           C.trans ~guard:(sv "idle" >=: ci 5) "Up" "Down";
           C.trans
             ~guard:(sv "retries" >=: ci 3)
             "Error" "Down"
             ~action:[ assign_state "retries" (ci 0) ];
           (* defensive overflow check: retries is clamped at 3, so this
              guard is perpetually false - dead logic as discussed in
              the paper's evaluation of NICProtocol/TWC *)
           C.trans ~guard:(sv "retries" >: ci 3) "Error" "Error";
           C.trans
             ~guard:(iv "frame" =: ci f_beacon &&: iv "crc_ok")
             "Error" "Negotiate";
         ]
       [
         C.state "Down"
           ~entry:
             [
               assign_out "link" (ci 0);
               assign_state "beacons" (ci 0);
               assign_state "session" (ci 0);
             ]
           ~during:
             [
               if_ (iv "frame" =: ci f_beacon &&: iv "crc_ok")
                 [
                   assign_state "beacons"
                     (Binop (Min, ci 7, sv "beacons" +: ci 1));
                 ]
                 [];
             ];
         C.state "Negotiate" ~entry:[ assign_out "link" (ci 1) ];
         C.state "Auth" ~entry:[ assign_out "link" (ci 2) ];
         C.state "Up"
           ~entry:
             [
               assign_out "link" (ci 3);
               assign_state "idle" (ci 0);
               assign_state "burst" (ci 0);
             ]
           ~during:
             [
               (* keepalive and burst-rate bookkeeping *)
               if_ (iv "frame" =: ci f_none)
                 [
                   assign_state "idle" (Binop (Min, ci 7, sv "idle" +: ci 1));
                   assign_state "burst" (ci 0);
                 ]
                 [
                   assign_state "idle" (ci 0);
                   assign_state "burst" (Binop (Min, ci 7, sv "burst" +: ci 1));
                 ];
               if_ (iv "frame" =: ci f_data)
                 [
                   if_ (not_ (iv "crc_ok"))
                     [
                       assign_out "dropped"
                         (Binop
                            (Min, ci 100, Var (Output, "dropped") +: ci 1));
                     ]
                     [
                       if_ (iv "token" =: sv "session")
                         [
                           if_ (iv "seq" =: sv "expected_seq")
                             [
                               if_ (sv "burst" >=: ci 6)
                                 [
                                   (* rate limited: hold the window *)
                                   assign_out "tx" (ci 6);
                                 ]
                                 [
                                   assign_state "expected_seq"
                                     (Binop
                                        ( Mod,
                                          sv "expected_seq" +: ci 1,
                                          ci 64 ));
                                   assign_out "accepted"
                                     (Binop
                                        ( Min,
                                          ci 100,
                                          Var (Output, "accepted") +: ci 1 ));
                                   assign_out "tx" (ci f_data);
                                 ];
                             ]
                             [
                               (* out-of-order: request retransmission *)
                               assign_out "tx" (ci 6);
                               assign_out "dropped"
                                 (Binop
                                    ( Min,
                                      ci 100,
                                      Var (Output, "dropped") +: ci 1 ));
                             ];
                         ]
                         [
                           (* token mismatch: hijack attempt, drop *)
                           assign_out "dropped"
                             (Binop
                                (Min, ci 100, Var (Output, "dropped") +: ci 1));
                         ];
                     ];
                 ]
                 [];
             ];
         C.state "Error" ~entry:[ assign_out "link" (ci 4) ];
       ])

let cached = lazy (Stateflow.Sf_compile.to_program (chart ()))
let program () = Lazy.force cached
let description = "Vehicle NIC communication protocol"
