(* Tests for the eight benchmark models: structural sanity, functional
   spot-checks of each model's core behaviour, and the state-dependent
   patterns the paper builds its argument on. *)

module V = Slim.Value
module Interp = Slim.Interp
module Branch = Slim.Branch

let check = Alcotest.check
let vi i = V.Int i
let vb b = V.Bool b
let vr r = V.Real r

let step prog st ins =
  let out, st' = Interp.run_step prog st (Interp.inputs_of_list ins) in
  (out, st')

let get out name = Interp.Smap.find name out

(* --- structural sanity over the whole suite --------------------------- *)

let test_all_models_valid () =
  List.iter
    (fun (e : Models.Registry.entry) ->
      let prog = e.Models.Registry.program () in
      (* compiles, type checks (done at build), has sensible structure *)
      Slim.Ir.type_check prog;
      let branches = Branch.count prog in
      check Alcotest.bool
        (e.Models.Registry.name ^ " has a real branch structure")
        true
        (branches >= 30);
      (* decision ids are dense and unique *)
      let ids = List.map fst (Slim.Ir.decisions_of_program prog) in
      check Alcotest.bool (e.Models.Registry.name ^ " dense decision ids")
        true
        (List.sort compare ids = List.init (List.length ids) Fun.id))
    Models.Registry.entries

let test_all_models_simulate () =
  (* every model survives 50 random steps from its initial state *)
  List.iter
    (fun (e : Models.Registry.entry) ->
      let prog = e.Models.Registry.program () in
      let rng = Random.State.make [| 99 |] in
      let st = ref (Interp.initial_state prog) in
      for _ = 1 to 50 do
        let _, st' = Interp.run_step prog !st (Interp.random_inputs rng prog) in
        st := st'
      done)
    Models.Registry.entries

let test_snapshot_determinism () =
  (* re-running the same input from the same snapshot is bit-identical *)
  List.iter
    (fun (e : Models.Registry.entry) ->
      let prog = e.Models.Registry.program () in
      let rng = Random.State.make [| 3 |] in
      let ins = Interp.random_inputs rng prog in
      let st = Interp.initial_state prog in
      let _, s1 = Interp.run_step prog st ins in
      let _, s2 = Interp.run_step prog st ins in
      check Alcotest.bool (e.Models.Registry.name ^ " deterministic") true
        (Interp.snapshot_equal s1 s2))
    Models.Registry.entries

(* --- CPUTask ----------------------------------------------------------- *)

let cputask = Models.Cputask.program ()

let test_cputask_add_then_delete () =
  let st0 = Interp.initial_state cputask in
  let add id =
    [ ("op", vi 1); ("id", vi id); ("prio", vi 3); ("deadline", vi 10) ]
  in
  let out1, st1 = step cputask st0 (add 7) in
  check Alcotest.int "add ok" 1 (V.to_int (get out1 "status"));
  check Alcotest.int "count 1" 1 (V.to_int (get out1 "queue_count"));
  (* delete the same id succeeds only because the state holds it *)
  let out2, st2 =
    step cputask st1 [ ("op", vi 2); ("id", vi 7); ("prio", vi 0); ("deadline", vi 0) ]
  in
  check Alcotest.int "delete ok" 1 (V.to_int (get out2 "status"));
  (* deleting again fails: not found *)
  let out3, _ =
    step cputask st2 [ ("op", vi 2); ("id", vi 7); ("prio", vi 0); ("deadline", vi 0) ]
  in
  check Alcotest.int "delete misses" 4 (V.to_int (get out3 "status"))

let test_cputask_duplicate_and_full () =
  let st = ref (Interp.initial_state cputask) in
  let add id =
    let out, st' =
      step cputask !st
        [ ("op", vi 1); ("id", vi id); ("prio", vi 1); ("deadline", vi 5) ]
    in
    st := st';
    V.to_int (get out "status")
  in
  check Alcotest.int "first add" 1 (add 10);
  check Alcotest.int "duplicate rejected" 3 (add 10);
  check Alcotest.int "add 2" 1 (add 11);
  check Alcotest.int "add 3" 1 (add 12);
  check Alcotest.int "add 4" 1 (add 13);
  check Alcotest.int "add 5" 1 (add 14);
  check Alcotest.int "queue full" 2 (add 15)

let test_cputask_dispatch_preemption () =
  let st = ref (Interp.initial_state cputask) in
  let add id prio =
    let out, st' =
      step cputask !st
        [ ("op", vi 1); ("id", vi id); ("prio", vi prio); ("deadline", vi 5) ]
    in
    st := st';
    out
  in
  let out1 = add 5 2 in
  check Alcotest.int "task 5 runs" 5 (V.to_int (get out1 "running_task"));
  let out2 = add 9 6 in
  check Alcotest.int "higher prio preempts" 9
    (V.to_int (get out2 "running_task"))

(* --- NICProtocol -------------------------------------------------------- *)

let nic = Models.Nicprotocol.program ()

let test_nic_session_token () =
  let st = ref (Interp.initial_state nic) in
  let send frame crc seq token =
    let out, st' =
      step nic !st
        [ ("frame", vi frame); ("crc_ok", vb crc); ("seq", vi seq);
          ("token", vi token) ]
    in
    st := st';
    out
  in
  (* two clean beacons bring the link to Negotiate *)
  ignore (send 1 true 0 0);
  let o = send 1 true 0 0 in
  check Alcotest.int "negotiate" 1 (V.to_int (get o "link"));
  (* auth request grants token 1234 *)
  let o = send 2 true 0 1234 in
  check Alcotest.int "auth" 2 (V.to_int (get o "link"));
  (* ack with the wrong token goes to Error *)
  let o = send 3 true 0 999 in
  check Alcotest.int "hijack -> error" 4 (V.to_int (get o "link"));
  (* recover via beacon, re-auth, ack with the right token *)
  ignore (send 1 true 0 0);
  ignore (send 2 true 0 77);
  let o = send 3 true 0 77 in
  check Alcotest.int "up" 3 (V.to_int (get o "link"))

let test_nic_sequence_window () =
  let st = ref (Interp.initial_state nic) in
  let send frame crc seq token =
    let out, st' =
      step nic !st
        [ ("frame", vi frame); ("crc_ok", vb crc); ("seq", vi seq);
          ("token", vi token) ]
    in
    st := st';
    out
  in
  ignore (send 1 true 0 0);
  ignore (send 1 true 0 0);
  ignore (send 2 true 0 42);
  ignore (send 3 true 0 42);
  (* in Up: data with seq=0 (expected) accepted; wrong seq dropped *)
  let o = send 4 true 0 42 in
  check Alcotest.int "in-order accepted" 1 (V.to_int (get o "accepted"));
  let o = send 4 true 5 42 in
  check Alcotest.int "out-of-order dropped" 1 (V.to_int (get o "dropped"));
  let o = send 4 true 1 42 in
  check Alcotest.int "next in sequence accepted" 2
    (V.to_int (get o "accepted"))

(* --- TCP ----------------------------------------------------------------- *)

let tcp = Models.Tcp.program ()

let tcp_send st ?(syn = false) ?(ack = false) ?(fin = false) ?(rst = false)
    ?(seq = 0) ?(ackno = 0) ?(listen = false) ?(close = false) port =
  step tcp st
    [
      ("port", vi port); ("syn", vb syn); ("ack", vb ack); ("fin", vb fin);
      ("rst", vb rst); ("seq", vi seq); ("ackno", vi ackno);
      ("listen_cmd", vb listen); ("close_cmd", vb close);
    ]

let test_tcp_handshake () =
  let st0 = Interp.initial_state tcp in
  let _, st1 = tcp_send st0 ~listen:true 0 in
  (* SYN with client seq 9: server ISN = (9*7+3) mod 64 = 2 *)
  let out, st2 = tcp_send st1 ~syn:true ~seq:9 0 in
  check Alcotest.int "syn-ack sent" 1 (V.to_int (get out "synack_tx"));
  (* the completing ACK must carry ackno = ISN+1 = 3 and seq = 10 *)
  let out, st3 = tcp_send st2 ~ack:true ~seq:10 ~ackno:3 0 in
  check Alcotest.int "established" 1 (V.to_int (get out "established"));
  check Alcotest.int "one active" 1 (V.to_int (get out "active_conns"));
  (* wrong ackno would NOT have established: replay from st2 *)
  let out_bad, _ = tcp_send st2 ~ack:true ~seq:10 ~ackno:4 0 in
  check Alcotest.int "bad ack rejected" 1 (V.to_int (get out_bad "bad_ack"));
  (* teardown: FIN moves to CLOSE_WAIT *)
  let out, _ = tcp_send st3 ~fin:true 0 in
  check Alcotest.int "fin received" 1 (V.to_int (get out "fin_rx"))

let test_tcp_slots_independent () =
  let st0 = Interp.initial_state tcp in
  let _, st1 = tcp_send st0 ~listen:true 0 in
  let _, st2 = tcp_send st1 ~listen:true 3 in
  let _, st3 = tcp_send st2 ~syn:true ~seq:5 0 in
  (* slot 3 is still LISTEN; slot 0 is SYN_RCVD *)
  (match Interp.Smap.find "cstate" st3 with
   | V.Vec a ->
     check Alcotest.int "slot0 syn-rcvd" 2 (V.to_int a.(0));
     check Alcotest.int "slot3 listening" 1 (V.to_int a.(3))
   | _ -> Alcotest.fail "cstate not a vector")

let test_tcp_syn_timeout () =
  let st0 = Interp.initial_state tcp in
  let _, st1 = tcp_send st0 ~listen:true 1 in
  let _, st = tcp_send st1 ~syn:true ~seq:0 1 in
  (* let the half-open handshake time out (timer = 8) *)
  let st = ref st in
  let timeouts = ref 0 in
  for _ = 1 to 10 do
    let out, st' = tcp_send !st 0 in
    st := st';
    (* outputs are per-step: remember whether the expiry ever fired *)
    timeouts := max !timeouts (V.to_int (get out "timeouts"))
  done;
  check Alcotest.int "half-open timed out" 1 !timeouts;
  match Interp.Smap.find "cstate" !st with
  | V.Vec a -> check Alcotest.int "back to listen" 1 (V.to_int a.(1))
  | _ -> Alcotest.fail "cstate not a vector"

(* --- LANSwitch ----------------------------------------------------------- *)

let lan = Models.Lanswitch.program ()

let lan_frame st ?(valid = true) ~src ~dst ~port ~vlan () =
  step lan st
    [
      ("valid", vb valid); ("src", vi src); ("dst", vi dst);
      ("in_port", vi port); ("vlan", vi vlan);
    ]

let test_lanswitch_learn_forward () =
  let st0 = Interp.initial_state lan in
  (* unknown destination floods *)
  let out, st1 = lan_frame st0 ~src:100 ~dst:200 ~port:0 ~vlan:0 () in
  check Alcotest.int "flood unknown" 3 (V.to_int (get out "action"));
  (* station 200 talks from port 1: learned *)
  let out, st2 = lan_frame st1 ~src:200 ~dst:100 ~port:1 ~vlan:0 () in
  check Alcotest.int "forward to learned port" 1 (V.to_int (get out "action"));
  check Alcotest.int "egress 0" 0 (V.to_int (get out "egress"));
  (* now 100 -> 200 forwards to port 1 *)
  let out, _ = lan_frame st2 ~src:100 ~dst:200 ~port:0 ~vlan:0 () in
  check Alcotest.int "forward" 1 (V.to_int (get out "action"));
  check Alcotest.int "egress 1" 1 (V.to_int (get out "egress"))

let test_lanswitch_vlan_isolation () =
  let st0 = Interp.initial_state lan in
  (* port 3 is only a member of vlan 0: vlan 2 traffic is dropped *)
  let out, _ = lan_frame st0 ~src:5 ~dst:6 ~port:3 ~vlan:2 () in
  check Alcotest.int "vlan violation dropped" 0 (V.to_int (get out "action"))

let test_lanswitch_filter_same_port () =
  let st0 = Interp.initial_state lan in
  let _, st1 = lan_frame st0 ~src:300 ~dst:0 ~port:2 ~vlan:1 () in
  (* destination on the ingress port: filtered *)
  let out, _ = lan_frame st1 ~src:301 ~dst:300 ~port:2 ~vlan:1 () in
  check Alcotest.int "filtered" 2 (V.to_int (get out "action"))

(* --- LEDLC ---------------------------------------------------------------- *)

let ledlc = Models.Ledlc.program ()

let led_cmd st ?(enable = true) ~bank ~cmd ~level ~budget () =
  let checksum = (bank * 29) + (cmd * 5) + level + 11 in
  step ledlc st
    [
      ("enable", vb enable); ("bank", vi bank); ("cmd", vi cmd);
      ("level", vi level); ("budget", vi budget); ("check", vi checksum);
    ]

let test_ledlc_checksum_gate () =
  let st0 = Interp.initial_state ledlc in
  (* correct checksum applies the command *)
  let out, _st1 = led_cmd st0 ~bank:1 ~cmd:3 ~level:3 ~budget:100 () in
  check Alcotest.int "bank 1 drawing current" 9
    (V.to_int (get out "total_current"));
  (* wrong checksum is ignored *)
  let out, _ =
    step ledlc st0
      [
        ("enable", vb true); ("bank", vi 1); ("cmd", vi 3); ("level", vi 3);
        ("budget", vi 100); ("check", vi 0);
      ]
  in
  check Alcotest.int "bad checksum ignored" 0
    (V.to_int (get out "total_current"))

let test_ledlc_overload_shedding () =
  let st = ref (Interp.initial_state ledlc) in
  (* light all four banks to high with a generous budget *)
  for bank = 0 to 3 do
    let _, st' = led_cmd !st ~bank ~cmd:3 ~level:3 ~budget:120 () in
    st := st'
  done;
  (* now tighten the budget: the controller sheds the brightest bank *)
  let out, _ = led_cmd !st ~bank:0 ~cmd:0 ~level:0 ~budget:20 () in
  check Alcotest.bool "overload raised" true (V.to_bool (get out "overload"))

let test_ledlc_dead_default_never_fires () =
  (* execute many random steps; the switch-case defaults (dead logic)
     must never be hit *)
  let tracker = Coverage.Tracker.create ledlc in
  let rng = Random.State.make [| 5 |] in
  let st = ref (Interp.initial_state ledlc) in
  for _ = 1 to 300 do
    let _, st' =
      Interp.run_step ~on_event:(Coverage.Tracker.observe tracker) ledlc !st
        (Interp.random_inputs rng ledlc)
    in
    st := st'
  done;
  let uncovered = Coverage.Tracker.uncovered_branches tracker in
  (* the four bank-current defaults are among the uncovered *)
  let defaults =
    List.filter (fun (b : Branch.t) -> b.outcome = Branch.Default) uncovered
  in
  check Alcotest.bool "dead defaults stay uncovered" true
    (List.length defaults >= 4)

(* --- UTPC ------------------------------------------------------------------ *)

let utpc = Models.Utpc.program ()

let utpc_step st ?(power = true) ?(arm = false) ?(code = 0) ?(clear = false)
    ?(cmd = 0.0) () =
  step utpc st
    ([
       ("power_on", vb power); ("arm", vb arm); ("arm_code", vi code);
       ("clear", vb clear);
     ]
    @ List.concat_map
        (fun k ->
          [
            (Fmt.str "cmd%d" k, vr cmd); (Fmt.str "rpm%d" k, vr 1000.0);
          ])
        [ 0; 1; 2; 3 ])

let test_utpc_rolling_code_interlock () =
  let st0 = Interp.initial_state utpc in
  let out, st1 = utpc_step st0 () in
  check Alcotest.int "standby" 1 (V.to_int (get out "mode"));
  (* constant code cannot arm (needs pending+1) *)
  let _, st2 = utpc_step st1 ~arm:true ~code:500 () in
  let out, _ = utpc_step st2 ~arm:true ~code:500 () in
  check Alcotest.int "constant code rejected" 1 (V.to_int (get out "mode"));
  (* incrementing code arms *)
  let _, st3 = utpc_step st1 ~code:500 () in
  let out, _ = utpc_step st3 ~arm:true ~code:501 () in
  check Alcotest.int "rolling code arms" 2 (V.to_int (get out "mode"))

let test_utpc_duty_slew () =
  let st0 = Interp.initial_state utpc in
  let _, st1 = utpc_step st0 ~code:10 () in
  let _, st2 = utpc_step st1 ~arm:true ~code:11 () in
  (* one running step at full command: duty is slew-limited to 15 *)
  let out, _ = utpc_step st2 ~arm:true ~code:11 ~cmd:100.0 () in
  check Alcotest.bool "slew limited" true
    (V.to_real (get out "duty0") <= 15.0 +. 1e-9)

(* --- TWC / AFC smoke ---------------------------------------------------- *)

let test_twc_emergency_needs_stop () =
  let twc = Models.Twc.program () in
  let st = ref (Interp.initial_state twc) in
  let drive cmd target =
    let out, st' =
      step twc !st
        ([ ("cmd", vi cmd); ("target", vi target); ("rail_wet", vb false) ]
        @ List.map (fun k -> (Fmt.str "w%d" k, vi 0)) [ 0; 1; 2; 3 ])
    in
    st := st';
    out
  in
  ignore (drive 1 100);
  (* accelerate a few steps *)
  for _ = 1 to 5 do ignore (drive 1 100) done;
  let out = drive 3 0 in
  check Alcotest.int "emergency mode" 6 (V.to_int (get out "mode"));
  (* cmd 0 alone does not leave Emergency while still moving *)
  let out = drive 0 0 in
  check Alcotest.int "still emergency while moving" 6
    (V.to_int (get out "mode"));
  (* brake until stopped, then it may return to idle *)
  let rec stop k = if k = 0 then () else begin ignore (drive 0 0); stop (k - 1) end in
  stop 10;
  let out = drive 0 0 in
  check Alcotest.int "idle after full stop" 0 (V.to_int (get out "mode"))

let test_afc_failsafe_latches () =
  let afc = Models.Afc.program () in
  let st = ref (Interp.initial_state afc) in
  let drive ?(o2 = 0.5) ?(rpm = 2000.0) ?(coolant = 90.0) ?(reset = false) ()
      =
    let out, st' =
      step afc !st
        [
          ("throttle", vr 30.0); ("rpm", vr rpm); ("o2", vr o2);
          ("coolant", vr coolant); ("reset", vb reset); ("knock", vr 0.0);
        ]
    in
    st := st';
    out
  in
  (* warm up into Normal *)
  for _ = 1 to 6 do ignore (drive ()) done;
  let out = drive () in
  check Alcotest.int "normal mode" 1 (V.to_int (get out "mode"));
  (* pegged O2 while running -> failsafe *)
  let out = drive ~o2:0.99 () in
  check Alcotest.int "failsafe" 3 (V.to_int (get out "mode"));
  (* recovers only with reset and healthy O2 *)
  let out = drive ~o2:0.5 () in
  check Alcotest.int "latched" 3 (V.to_int (get out "mode"));
  let out = drive ~o2:0.5 ~reset:true () in
  check Alcotest.int "reset to startup" 0 (V.to_int (get out "mode"))

let () =
  Alcotest.run "models"
    [
      ( "suite",
        [
          Alcotest.test_case "all valid" `Quick test_all_models_valid;
          Alcotest.test_case "all simulate" `Quick test_all_models_simulate;
          Alcotest.test_case "deterministic" `Quick test_snapshot_determinism;
        ] );
      ( "cputask",
        [
          Alcotest.test_case "add/delete" `Quick test_cputask_add_then_delete;
          Alcotest.test_case "duplicate/full" `Quick test_cputask_duplicate_and_full;
          Alcotest.test_case "dispatch" `Quick test_cputask_dispatch_preemption;
        ] );
      ( "nicprotocol",
        [
          Alcotest.test_case "session token" `Quick test_nic_session_token;
          Alcotest.test_case "sequence window" `Quick test_nic_sequence_window;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "handshake" `Quick test_tcp_handshake;
          Alcotest.test_case "slot isolation" `Quick test_tcp_slots_independent;
          Alcotest.test_case "syn timeout" `Quick test_tcp_syn_timeout;
        ] );
      ( "lanswitch",
        [
          Alcotest.test_case "learn/forward" `Quick test_lanswitch_learn_forward;
          Alcotest.test_case "vlan isolation" `Quick test_lanswitch_vlan_isolation;
          Alcotest.test_case "same-port filter" `Quick test_lanswitch_filter_same_port;
        ] );
      ( "ledlc",
        [
          Alcotest.test_case "checksum gate" `Quick test_ledlc_checksum_gate;
          Alcotest.test_case "overload shed" `Quick test_ledlc_overload_shedding;
          Alcotest.test_case "dead default" `Quick test_ledlc_dead_default_never_fires;
        ] );
      ( "utpc",
        [
          Alcotest.test_case "rolling code" `Quick test_utpc_rolling_code_interlock;
          Alcotest.test_case "duty slew" `Quick test_utpc_duty_slew;
        ] );
      ( "twc/afc",
        [
          Alcotest.test_case "twc emergency" `Quick test_twc_emergency_needs_stop;
          Alcotest.test_case "afc failsafe" `Quick test_afc_failsafe_latches;
        ] );
    ]
