(* Tests for the Stateflow-like chart language and its compiler. *)

module V = Slim.Value
module Ir = Slim.Ir
module Interp = Slim.Interp
module C = Stateflow.Chart
module SF = Stateflow.Sf_compile

let check = Alcotest.check
let vi i = V.Int i
let vb b = V.Bool b
let value_testable = Alcotest.testable V.pp V.equal

(* A pedestrian-light chart: Red -> Green on [go], Green -> Yellow after 3
   ticks, Yellow -> Red immediately next step.  Output [walk] is true in
   Green. *)
let light_chart () =
  let open Ir in
  C.chart ~name:"light"
    ~inputs:[ input "go" V.Tbool ]
    ~outputs:[ output "walk" V.Tbool; output "phase" (V.tint_range 0 2) ]
    ~data:[ state "ticks" (V.tint_range 0 10) (V.Int 0) ]
    (C.region ~initial:"Red"
       ~transitions:
         [
           C.trans ~guard:(iv "go") "Red" "Green";
           C.trans ~guard:(sv "ticks" >=: ci 3) "Green" "Yellow";
           C.trans "Yellow" "Red";
         ]
       [
         C.state "Red"
           ~entry:[ assign_out "walk" (cb false); assign_out "phase" (ci 0) ];
         C.state "Green"
           ~entry:
             [
               assign_state "ticks" (ci 0);
               assign_out "walk" (cb true);
               assign_out "phase" (ci 1);
             ]
           ~during:[ assign_state "ticks" (sv "ticks" +: ci 1) ];
         C.state "Yellow"
           ~entry:[ assign_out "walk" (cb false); assign_out "phase" (ci 2) ];
       ])

let run_chart prog st ins =
  Interp.run_step prog st (Interp.inputs_of_list ins)

let test_light_progression () =
  let prog = SF.to_program (light_chart ()) in
  let st = ref (Interp.initial_state prog) in
  let step go =
    let out, st' = run_chart prog !st [ ("go", vb go) ] in
    st := st';
    ( Interp.Smap.find "phase" out |> V.to_int,
      Interp.Smap.find "walk" out |> V.to_bool )
  in
  (* stays Red without go *)
  check Alcotest.(pair int bool) "stays red" (0, false) (step false);
  (* go -> Green (entry actions fire on the transition step) *)
  check Alcotest.(pair int bool) "turns green" (1, true) (step true);
  (* three during-ticks before the guard ticks>=3 fires *)
  check Alcotest.(pair int bool) "green 1" (1, true) (step false);
  check Alcotest.(pair int bool) "green 2" (1, true) (step false);
  check Alcotest.(pair int bool) "green 3" (1, true) (step false);
  check Alcotest.(pair int bool) "yellow" (2, false) (step false);
  check Alcotest.(pair int bool) "back to red" (0, false) (step false)

let test_output_persistence () =
  (* Outputs hold their value on steps where no action assigns them. *)
  let prog = SF.to_program (light_chart ()) in
  let st0 = Interp.initial_state prog in
  let out1, st1 = run_chart prog st0 [ ("go", vb true) ] in
  check value_testable "walk set on entry" (vb true)
    (Interp.Smap.find "walk" out1);
  let out2, _ = run_chart prog st1 [ ("go", vb false) ] in
  check value_testable "walk persists without assignment" (vb true)
    (Interp.Smap.find "walk" out2)

let test_location_in_snapshot () =
  let prog = SF.to_program (light_chart ()) in
  let st0 = Interp.initial_state prog in
  check value_testable "initial location is Red" (vi 0)
    (Interp.Smap.find "loc" st0);
  let _, st1 = run_chart prog st0 [ ("go", vb true) ] in
  check value_testable "location moved to Green" (vi 1)
    (Interp.Smap.find "loc" st1)

(* Hierarchical chart: Off / On, where On has child region {Low, High}.
   Entering On always resets the child to Low. *)
let hier_chart () =
  let open Ir in
  C.chart ~name:"hier"
    ~inputs:[ input "power" V.Tbool; input "boost" V.Tbool ]
    ~outputs:[ output "level" (V.tint_range 0 2) ]
    (C.region ~initial:"Off"
       ~transitions:
         [
           C.trans ~guard:(iv "power") "Off" "On";
           C.trans ~guard:(not_ (iv "power")) "On" "Off";
         ]
       [
         C.state "Off" ~entry:[ assign_out "level" (ci 0) ];
         C.state "On"
           ~children:
             (C.region ~initial:"Low"
                ~transitions:
                  [
                    C.trans ~guard:(iv "boost") "Low" "High";
                    C.trans ~guard:(not_ (iv "boost")) "High" "Low";
                  ]
                [
                  C.state "Low" ~entry:[ assign_out "level" (ci 1) ];
                  C.state "High" ~entry:[ assign_out "level" (ci 2) ];
                ]);
       ])

let test_hierarchy_reset_on_entry () =
  let prog = SF.to_program (hier_chart ()) in
  let st = ref (Interp.initial_state prog) in
  let step power boost =
    let out, st' =
      run_chart prog !st [ ("power", vb power); ("boost", vb boost) ]
    in
    st := st';
    V.to_int (Interp.Smap.find "level" out)
  in
  check Alcotest.int "off" 0 (step false false);
  check Alcotest.int "on enters Low" 1 (step true false);
  check Alcotest.int "boost to High" 2 (step true true);
  check Alcotest.int "power off" 0 (step false false);
  (* re-entry must reset child region to Low, not resume in High *)
  check Alcotest.int "re-entry resets to Low" 1 (step true false)

let test_chart_fragment_in_diagram () =
  (* Embed the light chart in a block diagram via Builder.chart. *)
  let frag = SF.compile (light_chart ()) in
  let b = Slim.Builder.create "wrapper" in
  let go = Slim.Builder.inport b "go" V.Tbool in
  (match Slim.Builder.chart b frag [ go ] with
   | [ walk; phase ] ->
     Slim.Builder.outport b "walk" walk;
     Slim.Builder.outport b "phase" phase
   | _ -> Alcotest.fail "expected two chart outputs");
  let prog = Slim.Compile.to_program (Slim.Builder.finish b) in
  let st0 = Interp.initial_state prog in
  let out, _ = run_chart prog st0 [ ("go", vb true) ] in
  check value_testable "chart works inside a diagram" (vi 1)
    (Interp.Smap.find "phase" out)

let test_validate_errors () =
  let bad_initial =
    C.chart ~name:"bad" (C.region ~initial:"Nope" [ C.state "A" ])
  in
  (match C.validate bad_initial with
   | () -> Alcotest.fail "expected Invalid_chart"
   | exception C.Invalid_chart _ -> ());
  let bad_transition =
    C.chart ~name:"bad2"
      (C.region ~initial:"A"
         ~transitions:[ C.trans "A" "Missing" ]
         [ C.state "A" ])
  in
  (match C.validate bad_transition with
   | () -> Alcotest.fail "expected Invalid_chart"
   | exception C.Invalid_chart _ -> ());
  let dup =
    C.chart ~name:"dup" (C.region ~initial:"A" [ C.state "A"; C.state "A" ])
  in
  (match C.validate dup with
   | () -> Alcotest.fail "expected Invalid_chart"
   | exception C.Invalid_chart _ -> ())

let test_transition_priority () =
  (* Two enabled transitions: the first in list order must win. *)
  let open Ir in
  let c =
    C.chart ~name:"prio"
      ~inputs:[ input "x" V.tint ]
      ~outputs:[ output "which" (V.tint_range 0 2) ]
      (C.region ~initial:"S"
         ~transitions:
           [
             C.trans ~guard:(iv "x" >: ci 0) "S" "A";
             C.trans ~guard:(iv "x" >: ci (-10)) "S" "B";
           ]
         [
           C.state "S";
           C.state "A" ~entry:[ assign_out "which" (ci 1) ];
           C.state "B" ~entry:[ assign_out "which" (ci 2) ];
         ])
  in
  let prog = SF.to_program c in
  let st0 = Interp.initial_state prog in
  let out, _ = run_chart prog st0 [ ("x", vi 5) ] in
  check value_testable "first transition wins" (vi 1)
    (Interp.Smap.find "which" out)

let test_exit_actions_depth_first () =
  (* Exiting a composite state runs child exits before its own. *)
  let open Ir in
  let c =
    C.chart ~name:"exits"
      ~inputs:[ input "quit" V.Tbool ]
      ~outputs:[ output "trace" (V.tint_range 0 100) ]
      ~data:[ state "acc" (V.tint_range 0 100) (V.Int 0) ]
      (C.region ~initial:"Outer"
         ~transitions:[ C.trans ~guard:(iv "quit") "Outer" "Done" ]
         [
           C.state "Outer"
             ~exit:[ assign_state "acc" (sv "acc" *: ci 10) ]
             ~children:
               (C.region ~initial:"Inner"
                  [ C.state "Inner" ~exit:[ assign_state "acc" (sv "acc" +: ci 3) ] ]);
           C.state "Done" ~entry:[ assign_out "trace" (sv "acc") ];
         ])
  in
  let prog = SF.to_program c in
  let st0 = Interp.initial_state prog in
  let _, st1 = run_chart prog st0 [ ("quit", vb false) ] in
  let out, _ = run_chart prog st1 [ ("quit", vb true) ] in
  (* child exit first: (0 + 3) * 10 = 30; parent-first would give 3 *)
  check value_testable "child exit runs before parent" (vi 30)
    (Interp.Smap.find "trace" out)

let () =
  Alcotest.run "stateflow"
    [
      ( "flat",
        [
          Alcotest.test_case "light progression" `Quick test_light_progression;
          Alcotest.test_case "output persistence" `Quick test_output_persistence;
          Alcotest.test_case "location in snapshot" `Quick test_location_in_snapshot;
          Alcotest.test_case "transition priority" `Quick test_transition_priority;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "reset on entry" `Quick test_hierarchy_reset_on_entry;
          Alcotest.test_case "exit order" `Quick test_exit_actions_depth_first;
        ] );
      ( "integration",
        [
          Alcotest.test_case "fragment in diagram" `Quick test_chart_fragment_in_diagram;
          Alcotest.test_case "validation" `Quick test_validate_errors;
        ] );
    ]
