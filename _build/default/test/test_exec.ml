(* Differential test for the slot-compiled execution core.

   The seed's map-based interpreter is kept verbatim as
   [Interp.run_step_reference]; this test drives it and the compiled
   [Slim.Exec] path in lockstep over every registry model for hundreds
   of random steps and demands bit-identical outputs, next-state
   snapshots, and coverage event streams.  It is the proof that the
   slot compilation is a pure representation change. *)

module V = Slim.Value
module Interp = Slim.Interp
module Exec = Slim.Exec
module Branch = Slim.Branch

let check = Alcotest.check

let steps_per_model = 220

let event_equal (a : Exec.event) (b : Exec.event) =
  match a, b with
  | Exec.Branch_hit ka, Exec.Branch_hit kb -> Branch.equal_key ka kb
  | ( Exec.Cond_vector { id = ia; vector = va; outcome = oa },
      Exec.Cond_vector { id = ib; vector = vb; outcome = ob } ) ->
    ia = ib && va = vb && oa = ob
  | _ -> false

let pp_event ppf = function
  | Exec.Branch_hit k -> Fmt.pf ppf "Branch_hit %a" Branch.pp_key k
  | Exec.Cond_vector { id; vector; outcome } ->
    Fmt.pf ppf "Cond_vector {id=%d; vector=[%a]; outcome=%b}" id
      Fmt.(array ~sep:(any ";") bool)
      vector outcome

let events_equal name step la lb =
  if
    List.length la <> List.length lb
    || not (List.for_all2 event_equal la lb)
  then
    Alcotest.failf "%s step %d: event streams differ@.reference: %a@.exec: %a"
      name step
      Fmt.(list ~sep:(any "; ") pp_event)
      la
      Fmt.(list ~sep:(any "; ") pp_event)
      lb

let collect f =
  let events = ref [] in
  let out = f (fun e -> events := e :: !events) in
  (out, List.rev !events)

(* One model: run the reference interpreter and the compiled handle in
   lockstep from the initial state. *)
let differential (entry : Models.Registry.entry) () =
  let prog = entry.Models.Registry.program () in
  let name = entry.Models.Registry.name in
  let ex = Exec.handle prog in
  let rng = Random.State.make [| 0xD1FF; String.length name |] in
  let st_ref = ref (Interp.initial_state prog) in
  let st_new = ref (Exec.initial_state ex) in
  check Alcotest.bool (name ^ ": initial snapshots agree") true
    (Interp.snapshot_equal !st_ref (Exec.smap_of_state ex !st_new));
  for step = 1 to steps_per_model do
    let einputs = Exec.random_inputs rng ex in
    let minputs = Exec.smap_of_inputs ex einputs in
    let (out_ref, st_ref'), ev_ref =
      collect (fun on_event ->
          Interp.run_step_reference ~on_event prog !st_ref minputs)
    in
    let (out_new, st_new'), ev_new =
      collect (fun on_event -> Exec.run_step ~on_event ex !st_new einputs)
    in
    events_equal name step ev_ref ev_new;
    if not (Interp.Smap.equal V.equal out_ref (Exec.smap_of_outputs ex out_new))
    then Alcotest.failf "%s step %d: outputs differ" name step;
    if not (Interp.snapshot_equal st_ref' (Exec.smap_of_state ex st_new'))
    then Alcotest.failf "%s step %d: next-state snapshots differ" name step;
    (* interned-state invariant: equal states must hash equal *)
    let round = Exec.state_of_smap ex (Exec.smap_of_state ex st_new') in
    check Alcotest.bool (name ^ ": smap round-trip equal") true
      (Exec.state_equal st_new' round);
    check Alcotest.bool (name ^ ": equal states hash equal") true
      (Exec.state_hash st_new' = Exec.state_hash round);
    st_ref := st_ref';
    st_new := st_new'
  done

let test_hash_numeric_coherence () =
  (* Value.equal equates Int n and Real (float n), and 0. and -0.; the
     structural hash must follow or interning would split equal states *)
  let pairs =
    [
      ([| V.Int 42 |], [| V.Real 42.0 |]);
      ([| V.Real 0.0 |], [| V.Real (-0.0) |]);
      ( [| V.Vec [| V.Int 3; V.Bool true |] |],
        [| V.Vec [| V.Real 3.0; V.Bool true |] |] );
    ]
  in
  List.iter
    (fun (a, b) ->
      check Alcotest.bool "values equal" true (Exec.values_equal a b);
      check Alcotest.bool "hashes equal" true
        (Exec.values_hash a = Exec.values_hash b))
    pairs

let test_run_step_does_not_mutate () =
  let prog = (Option.get (Models.Registry.find "CPUTask")).program () in
  let ex = Exec.handle prog in
  let st = Exec.initial_state ex in
  let st_copy = Array.copy st in
  let rng = Random.State.make [| 7 |] in
  let ins = Exec.random_inputs rng ex in
  let ins_copy = Array.copy ins in
  let _ = Exec.run_step ex st ins in
  check Alcotest.bool "state untouched" true (Exec.values_equal st st_copy);
  check Alcotest.bool "inputs untouched" true (Exec.values_equal ins ins_copy)

let () =
  Alcotest.run "exec"
    [
      ( "differential vs reference interpreter",
        List.map
          (fun (e : Models.Registry.entry) ->
            Alcotest.test_case e.Models.Registry.name `Quick (differential e))
          Models.Registry.entries );
      ( "representation",
        [
          Alcotest.test_case "hash/equal numeric coherence" `Quick
            test_hash_numeric_coherence;
          Alcotest.test_case "run_step purity" `Quick
            test_run_step_does_not_mutate;
        ] );
    ]
