(* Unit and property tests for the SLIM substrate: values, IR, branches,
   interpreter, block diagrams and the diagram compiler. *)

module V = Slim.Value
module Ir = Slim.Ir
module B = Slim.Builder
module Interp = Slim.Interp
module Branch = Slim.Branch

let check = Alcotest.check
let vi i = V.Int i
let vr r = V.Real r
let vb b = V.Bool b

let value_testable = Alcotest.testable V.pp V.equal

(* --- Value ------------------------------------------------------------ *)

let test_value_arith () =
  check value_testable "int add" (vi 5) (V.add (vi 2) (vi 3));
  check value_testable "mixed add promotes" (vr 5.5) (V.add (vi 2) (vr 3.5));
  check value_testable "bool in arith is 0/1" (vr 1.0) (V.add (vb true) (vr 0.0));
  check value_testable "int div truncates" (vi (-2)) (V.div (vi (-5)) (vi 2));
  check value_testable "mod sign follows divisor" (vi 2) (V.modulo (vi (-3)) (vi 5));
  check value_testable "real mod" (vr 1.5) (V.modulo (vr 7.5) (vr 2.0));
  check value_testable "min mixed" (vr 2.0) (V.min_v (vi 2) (vr 3.0));
  check value_testable "abs" (vi 4) (V.abs_v (vi (-4)));
  check value_testable "clamp int" (vi 3) (V.clamp ~lo:0.0 ~hi:3.0 (vi 7))

let test_value_errors () =
  Alcotest.check_raises "div by zero" (V.Type_error "div: integer division by zero")
    (fun () -> ignore (V.div (vi 1) (vi 0)));
  Alcotest.check_raises "neg bool" (V.Type_error "neg: bool operand")
    (fun () -> ignore (V.neg (vb true)))

let test_value_string_roundtrip () =
  let cases =
    [ (V.Tbool, vb true);
      (V.tint, vi (-42));
      (V.treal, vr 3.25);
      (V.Tvec (V.tint, 3), V.Vec [| vi 1; vi 2; vi 3 |]);
      (V.Tvec (V.Tvec (V.tint, 2), 2),
       V.Vec [| V.Vec [| vi 1; vi 2 |]; V.Vec [| vi 3; vi 4 |] |]) ]
  in
  List.iter
    (fun (ty, v) ->
      check value_testable "roundtrip" v (V.of_string ty (V.to_string v)))
    cases

let prop_random_member =
  QCheck.Test.make ~name:"random value lies in its type" ~count:200
    QCheck.(triple small_signed_int small_nat bool)
    (fun (lo, span, use_vec) ->
      let ty0 = V.tint_range lo (lo + span) in
      let ty = if use_vec then V.Tvec (ty0, 3) else ty0 in
      let rng = Random.State.make [| lo; span |] in
      V.member ty (V.random rng ty))

let prop_copy_independent =
  QCheck.Test.make ~name:"copy of vector is independent" ~count:100
    QCheck.(small_nat)
    (fun n ->
      let n = max 1 (n mod 5) in
      let v = V.Vec (Array.init n (fun i -> vi i)) in
      let c = V.copy v in
      (match c with V.Vec a -> a.(0) <- vi 999 | _ -> ());
      match v with V.Vec a -> V.equal a.(0) (vi 0) | _ -> false)

(* --- IR --------------------------------------------------------------- *)

let test_atoms () =
  let open Ir in
  let a = iv "a" >: ci 0 in
  let b = iv "b" <: ci 5 in
  let c = iv "c" =: ci 1 in
  let guard = (a &&: not_ b) ||: c in
  let atoms = atoms_of_condition guard in
  check Alcotest.int "three atoms" 3 (List.length atoms)

let test_type_check_ok () =
  let open Ir in
  let prog =
    {
      name = "tc";
      inputs = [ input "x" V.tint ];
      outputs = [ output "y" V.tint ];
      states = [ state "acc" V.tint (V.Int 0) ];
      locals = [ local "t" V.tint ];
      body =
        [
          assign "t" (iv "x" +: sv "acc");
          if_ (lv "t" >: ci 10)
            [ assign_state "acc" (ci 0) ]
            [ assign_state "acc" (lv "t") ];
          assign_out "y" (lv "t");
        ];
    }
  in
  type_check prog

let test_type_check_fails () =
  let open Ir in
  let bad_guard =
    {
      name = "bad";
      inputs = [ input "x" V.tint ];
      outputs = [];
      states = [];
      locals = [];
      body = [ if_ (iv "x") [] [] ];
    }
  in
  (try
     type_check bad_guard;
     Alcotest.fail "expected Ill_typed"
   with Ir.Ill_typed _ -> ());
  let unbound =
    { name = "unbound"; inputs = []; outputs = []; states = []; locals = [];
      body = [ Ir.assign "nope" (Ir.ci 1) ] }
  in
  (try
     type_check unbound;
     Alcotest.fail "expected Ill_typed"
   with Ir.Ill_typed _ -> ())

let test_renumber () =
  let open Ir in
  let prog =
    {
      name = "rn";
      inputs = [ input "x" V.tint ];
      outputs = [];
      states = [];
      locals = [];
      body =
        [
          if_ (iv "x" >: ci 0)
            [ if_ (iv "x" >: ci 5) [] [] ]
            [ switch (iv "x") [ (1, []); (2, []) ] [] ];
        ];
    }
  in
  let prog = renumber_decisions prog in
  let ids = List.map fst (decisions_of_program prog) in
  check Alcotest.(list int) "dense ids" [ 0; 1; 2 ] ids

(* --- Branch ----------------------------------------------------------- *)

let test_branches () =
  let open Ir in
  let prog =
    renumber_decisions
      {
        name = "br";
        inputs = [ input "x" V.tint ];
        outputs = [];
        states = [];
        locals = [];
        body =
          [
            if_ (iv "x" >: ci 0)
              [ if_ (iv "x" >: ci 5) [] [] ]
              [ switch (iv "x") [ (1, []); (2, []) ] [] ];
          ];
      }
  in
  let bs = Branch.of_program prog in
  (* if: 2 branches, inner if: 2, switch: 2 cases + default = 3 -> 7 *)
  check Alcotest.int "branch count" 7 (List.length bs);
  let depth_of key =
    (List.find (fun (b : Branch.t) -> Branch.equal_key b.key key) bs).depth
  in
  check Alcotest.int "top then depth" 0 (depth_of (0, Branch.Then));
  check Alcotest.int "inner depth" 1 (depth_of (1, Branch.Then));
  check Alcotest.int "case depth" 1 (depth_of (2, Branch.Case 1));
  let sorted = Branch.sort_by_depth bs in
  (match sorted with
   | first :: _ -> check Alcotest.int "sorted starts shallow" 0 first.depth
   | [] -> Alcotest.fail "no branches");
  let parent_of key =
    (List.find (fun (b : Branch.t) -> Branch.equal_key b.key key) bs).parent
  in
  (match parent_of (1, Branch.Then) with
   | Some k -> check Alcotest.bool "parent is top-then" true (Branch.equal_key k (0, Branch.Then))
   | None -> Alcotest.fail "inner branch has no parent")

(* --- Interp ----------------------------------------------------------- *)

let accumulator_prog =
  let open Ir in
  renumber_decisions
    {
      name = "acc";
      inputs = [ input "x" V.tint ];
      outputs = [ output "y" V.tint ];
      states = [ state "acc" V.tint (V.Int 0) ];
      locals = [];
      body =
        [
          if_ (iv "x" >: ci 0)
            [ assign_state "acc" (sv "acc" +: iv "x") ]
            [];
          assign_out "y" (sv "acc");
        ];
    }

let test_interp_state_threading () =
  let st0 = Interp.initial_state accumulator_prog in
  let run st x =
    Interp.run_step accumulator_prog st (Interp.inputs_of_list [ ("x", vi x) ])
  in
  let out1, st1 = run st0 5 in
  let out2, st2 = run st1 7 in
  let out3, _ = run st2 (-1) in
  check value_testable "first step output" (vi 5) (Interp.Smap.find "y" out1);
  check value_testable "second accumulates" (vi 12) (Interp.Smap.find "y" out2);
  check value_testable "negative ignored" (vi 12) (Interp.Smap.find "y" out3);
  (* snapshots immutable: st1 unchanged by later runs *)
  check value_testable "snapshot immutable" (vi 5) (Interp.Smap.find "acc" st1)

let test_interp_events () =
  let st0 = Interp.initial_state accumulator_prog in
  let events = ref [] in
  let on_event e = events := e :: !events in
  ignore
    (Interp.run_step ~on_event accumulator_prog st0
       (Interp.inputs_of_list [ ("x", vi 3) ]));
  let branch_hits =
    List.filter_map
      (function Interp.Branch_hit k -> Some k | _ -> None)
      !events
  in
  check Alcotest.int "one branch hit" 1 (List.length branch_hits);
  let vectors =
    List.filter_map
      (function
        | Interp.Cond_vector { vector; outcome; _ } -> Some (vector, outcome)
        | _ -> None)
      !events
  in
  (match vectors with
   | [ (v, o) ] ->
     check Alcotest.int "single atom" 1 (Array.length v);
     check Alcotest.bool "outcome true" true o
   | _ -> Alcotest.fail "expected one condition vector")

let test_interp_vector_state () =
  let open Ir in
  let prog =
    renumber_decisions
      {
        name = "vec";
        inputs = [ input "i" (V.tint_range 0 3); input "v" V.tint ];
        outputs = [ output "o" V.tint ];
        states =
          [ state "buf" (V.Tvec (V.tint, 4)) (V.Vec (Array.make 4 (V.Int 0))) ];
        locals = [];
        body =
          [
            assign_state_idx "buf" (iv "i") (iv "v");
            assign_out "o" (index (sv "buf") (iv "i"));
          ];
      }
  in
  let st0 = Interp.initial_state prog in
  let out, st1 =
    Interp.run_step prog st0
      (Interp.inputs_of_list [ ("i", vi 2); ("v", vi 99) ])
  in
  check value_testable "written cell read back" (vi 99) (Interp.Smap.find "o" out);
  (match Interp.Smap.find "buf" st1 with
   | V.Vec a -> check value_testable "cell 2 set" (vi 99) a.(2)
   | _ -> Alcotest.fail "buf not a vector");
  (* st0 must not alias the new snapshot *)
  (match Interp.Smap.find "buf" st0 with
   | V.Vec a -> check value_testable "original untouched" (vi 0) a.(2)
   | _ -> Alcotest.fail "buf not a vector")

(* --- Builder + Compile ------------------------------------------------ *)

let thermostat_model () =
  let b = B.create "thermostat" in
  let temp = B.inport b "temp" (V.treal_range (-40.0) 120.0) in
  let setpoint = B.const_r b 20.0 in
  let err = B.diff b setpoint temp in
  let too_cold = B.compare_const b Ir.Gt 1.0 err in
  B.outport b "heat_on" too_cold;
  let heat_level = B.saturation b ~lower:0.0 ~upper:10.0 err in
  B.outport b "heat_level" heat_level;
  B.finish b

let test_compile_thermostat () =
  let m = thermostat_model () in
  let prog = Slim.Compile.to_program m in
  let st0 = Interp.initial_state prog in
  let run t =
    fst (Interp.run_step prog st0 (Interp.inputs_of_list [ ("temp", vr t) ]))
  in
  let cold = run 5.0 in
  check value_testable "cold -> heat on" (vb true)
    (Interp.Smap.find "heat_on" cold);
  check value_testable "cold -> level saturated" (vr 10.0)
    (Interp.Smap.find "heat_level" cold);
  let warm = run 25.0 in
  check value_testable "warm -> heat off" (vb false)
    (Interp.Smap.find "heat_on" warm);
  check value_testable "warm -> level clamped" (vr 0.0)
    (Interp.Smap.find "heat_level" warm)

let test_compile_delay_counter () =
  let b = B.create "dc" in
  let x = B.inport b "x" V.tint in
  let d = B.unit_delay b (V.Int 0) x in
  B.outport b "delayed" d;
  let c = B.counter b ~modulo:3 () in
  B.outport b "count" c;
  let m = B.finish b in
  let prog = Slim.Compile.to_program m in
  let st = ref (Interp.initial_state prog) in
  let outs = ref [] in
  for i = 1 to 5 do
    let out, st' =
      Interp.run_step prog !st (Interp.inputs_of_list [ ("x", vi (10 * i)) ])
    in
    st := st';
    outs :=
      (Interp.Smap.find "delayed" out, Interp.Smap.find "count" out) :: !outs
  done;
  let outs = List.rev !outs in
  let delayed = List.map fst outs and counts = List.map snd outs in
  check (Alcotest.list value_testable) "unit delay lags one step"
    [ vi 0; vi 10; vi 20; vi 30; vi 40 ] delayed;
  check (Alcotest.list value_testable) "counter wraps mod 3"
    [ vi 0; vi 1; vi 2; vi 0; vi 1 ] counts

let test_compile_switch_decision () =
  let b = B.create "sw" in
  let x = B.inport b "x" V.treal in
  let hi = B.const_r b 100.0 in
  let lo = B.const_r b (-100.0) in
  let y = B.switch b ~data1:hi ~control:x ~data2:lo () in
  B.outport b "y" y;
  let prog = Slim.Compile.to_program (B.finish b) in
  check Alcotest.int "switch compiles to one decision" 1
    (Ir.decision_count prog);
  let st0 = Interp.initial_state prog in
  let run v =
    Interp.Smap.find "y"
      (fst (Interp.run_step prog st0 (Interp.inputs_of_list [ ("x", vr v) ])))
  in
  check value_testable "positive control" (vr 100.0) (run 1.0);
  check value_testable "zero takes else" (vr (-100.0)) (run 0.0)

let test_compile_multiport () =
  let b = B.create "mp" in
  let sel = B.inport b "sel" (V.tint_range 0 5) in
  let a = B.const_i b 10 in
  let c = B.const_i b 20 in
  let d = B.const_i b 30 in
  let y = B.multiport b ~selector:sel [ (1, a); (2, c) ] ~default:d in
  B.outport b "y" y;
  let prog = Slim.Compile.to_program (B.finish b) in
  let st0 = Interp.initial_state prog in
  let run v =
    Interp.Smap.find "y"
      (fst (Interp.run_step prog st0 (Interp.inputs_of_list [ ("sel", vi v) ])))
  in
  check value_testable "case 1" (vi 10) (run 1);
  check value_testable "case 2" (vi 20) (run 2);
  check value_testable "default" (vi 30) (run 4)

let test_compile_data_store () =
  let b = B.create "ds" in
  B.data_store b "total" V.tint (V.Int 0);
  let x = B.inport b "x" V.tint in
  let cur = B.ds_read b "total" in
  let next = B.sum b [ cur; x ] in
  B.ds_write b "total" next;
  B.outport b "y" cur;
  let prog = Slim.Compile.to_program (B.finish b) in
  let st = Interp.initial_state prog in
  let out1, st1 = Interp.run_step prog st (Interp.inputs_of_list [ ("x", vi 4) ]) in
  let out2, _ = Interp.run_step prog st1 (Interp.inputs_of_list [ ("x", vi 2) ]) in
  check value_testable "reads start-of-step value" (vi 0)
    (Interp.Smap.find "y" out1);
  check value_testable "write committed at end of step" (vi 4)
    (Interp.Smap.find "y" out2)

let sub_double () =
  let b = B.create "double" in
  let u = B.inport b "u" V.tint in
  let y = B.gain b 2.0 u in
  B.outport b "y" y;
  B.finish b

let sub_negate () =
  let b = B.create "negate" in
  let u = B.inport b "u" V.tint in
  let y = B.gain b (-1.0) u in
  B.outport b "y" y;
  B.finish b

let test_compile_if_else_subsystem () =
  let b = B.create "cond" in
  let x = B.inport b "x" V.tint in
  let pos = B.compare_const b Ir.Ge 0.0 x in
  let outs =
    B.if_else b ~then_sys:(sub_double ()) ~else_sys:(sub_negate ()) ~cond:pos
      [ x ]
  in
  (match outs with
   | [ y ] -> B.outport b "y" y
   | _ -> Alcotest.fail "expected one output");
  let prog = Slim.Compile.to_program (B.finish b) in
  let st0 = Interp.initial_state prog in
  let run v =
    Interp.Smap.find "y"
      (fst (Interp.run_step prog st0 (Interp.inputs_of_list [ ("x", vi v) ])))
  in
  check value_testable "then arm doubles" (vi 6) (run 3);
  check value_testable "else arm negates" (vi 5) (run (-5))

let test_compile_enabled_held () =
  (* Inner counter only advances while enabled; held output freezes. *)
  let sub =
    let b = B.create "tick" in
    let u = B.inport b "u" V.tint in
    let c = B.counter b ~modulo:100 () in
    let s = B.sum b [ c; u ] in
    B.outport b "y" s;
    B.finish b
  in
  let b = B.create "en" in
  let enable = B.inport b "enable" V.Tbool in
  let u = B.inport b "u" V.tint in
  let outs = B.enabled b ~held:true sub ~enable [ u ] in
  (match outs with
   | [ y ] -> B.outport b "y" y
   | _ -> Alcotest.fail "expected one output");
  let prog = Slim.Compile.to_program (B.finish b) in
  let st = ref (Interp.initial_state prog) in
  let run en =
    let out, st' =
      Interp.run_step prog !st
        (Interp.inputs_of_list [ ("enable", vb en); ("u", vi 0) ])
    in
    st := st';
    Interp.Smap.find "y" out
  in
  check value_testable "enabled step 1" (vi 0) (run true);
  check value_testable "enabled step 2" (vi 1) (run true);
  check value_testable "disabled holds" (vi 1) (run false);
  check value_testable "still held" (vi 1) (run false);
  check value_testable "resumes from frozen counter" (vi 2) (run true)

let test_validate_catches_unconnected () =
  let blocks =
    [|
      { Slim.Model.id = 0; bname = "gain"; kind = Slim.Model.Gain 2.0;
        srcs = [| None |] };
    |]
  in
  let m = { Slim.Model.m_name = "bad"; blocks; stores = [] } in
  match Slim.Model.validate m with
  | () -> Alcotest.fail "expected Invalid_model"
  | exception Slim.Model.Invalid_model _ -> ()

let test_algebraic_loop_detected () =
  (* A gain feeding itself (via sum) with no delay in the loop. *)
  let blocks =
    [|
      { Slim.Model.id = 0; bname = "in"; kind = Slim.Model.Inport ("x", V.tint);
        srcs = [||] };
      {
        Slim.Model.id = 1;
        bname = "sum";
        kind = Slim.Model.Sum [ Slim.Model.Plus; Slim.Model.Plus ];
        srcs =
          [|
            Some { Slim.Model.s_block = 0; s_port = 0 };
            Some { Slim.Model.s_block = 1; s_port = 0 };
          |];
      };
      { Slim.Model.id = 2; bname = "out"; kind = Slim.Model.Outport "y";
        srcs = [| Some { Slim.Model.s_block = 1; s_port = 0 } |] };
    |]
  in
  let m = { Slim.Model.m_name = "loop"; blocks; stores = [] } in
  match Slim.Model.validate m with
  | () -> Alcotest.fail "expected algebraic loop error"
  | exception Slim.Model.Invalid_model msg ->
    check Alcotest.bool "mentions loop" true
      (let has sub s =
         let n = String.length sub and m = String.length s in
         let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
         go 0
       in
       has "loop" msg)

let test_block_count () =
  let b = B.create "bc" in
  let x = B.inport b "x" V.tint in
  let pos = B.compare_const b Ir.Ge 0.0 x in
  let outs =
    B.if_else b ~then_sys:(sub_double ()) ~else_sys:(sub_negate ()) ~cond:pos
      [ x ]
  in
  (match outs with [ y ] -> B.outport b "y" y | _ -> ());
  let m = B.finish b in
  (* top: inport + compare + ifelse + outport = 4; each sub: 3 blocks *)
  check Alcotest.int "recursive block count" 10 (Slim.Model.block_count m)

let prop_interp_deterministic =
  QCheck.Test.make ~name:"interpreter is deterministic" ~count:100
    QCheck.(small_signed_int)
    (fun x ->
      let st0 = Interp.initial_state accumulator_prog in
      let ins = Interp.inputs_of_list [ ("x", vi x) ] in
      let o1, s1 = Interp.run_step accumulator_prog st0 ins in
      let o2, s2 = Interp.run_step accumulator_prog st0 ins in
      Interp.snapshot_equal s1 s2
      && V.equal (Interp.Smap.find "y" o1) (Interp.Smap.find "y" o2))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "slim"
    [
      ( "value",
        [
          Alcotest.test_case "arith" `Quick test_value_arith;
          Alcotest.test_case "errors" `Quick test_value_errors;
          Alcotest.test_case "string roundtrip" `Quick test_value_string_roundtrip;
        ] );
      qsuite "value-props" [ prop_random_member; prop_copy_independent ];
      ( "ir",
        [
          Alcotest.test_case "atoms" `Quick test_atoms;
          Alcotest.test_case "type check ok" `Quick test_type_check_ok;
          Alcotest.test_case "type check fails" `Quick test_type_check_fails;
          Alcotest.test_case "renumber" `Quick test_renumber;
        ] );
      ("branch", [ Alcotest.test_case "structure" `Quick test_branches ]);
      ( "interp",
        [
          Alcotest.test_case "state threading" `Quick test_interp_state_threading;
          Alcotest.test_case "events" `Quick test_interp_events;
          Alcotest.test_case "vector state" `Quick test_interp_vector_state;
        ] );
      qsuite "interp-props" [ prop_interp_deterministic ];
      ( "compile",
        [
          Alcotest.test_case "thermostat" `Quick test_compile_thermostat;
          Alcotest.test_case "delay+counter" `Quick test_compile_delay_counter;
          Alcotest.test_case "switch" `Quick test_compile_switch_decision;
          Alcotest.test_case "multiport" `Quick test_compile_multiport;
          Alcotest.test_case "data store" `Quick test_compile_data_store;
          Alcotest.test_case "if/else subsystem" `Quick test_compile_if_else_subsystem;
          Alcotest.test_case "enabled held" `Quick test_compile_enabled_held;
          Alcotest.test_case "unconnected input" `Quick test_validate_catches_unconnected;
          Alcotest.test_case "algebraic loop" `Quick test_algebraic_loop_detected;
          Alcotest.test_case "block count" `Quick test_block_count;
        ] );
    ]
