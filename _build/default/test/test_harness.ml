(* Tests for the experiment harness: table rendering, plotting, and the
   experiment plumbing (with tiny budgets so the suite stays fast). *)

let check = Alcotest.check

let contains sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_text_table () =
  let t =
    Harness.Text_table.render
      ~header:[ "Model"; "Coverage" ]
      [ [ "CPUTask"; "100%" ]; [ "AFC"; "83%" ] ]
  in
  check Alcotest.bool "has header" true (contains "Model" t);
  check Alcotest.bool "has row" true (contains "CPUTask" t);
  (* all lines are equally wide *)
  let widths =
    String.split_on_char '\n' t
    |> List.filter (fun l -> l <> "")
    |> List.map String.length
    |> List.sort_uniq compare
  in
  check Alcotest.int "aligned" 1 (List.length widths)

let test_ascii_plot () =
  let series =
    [
      {
        Harness.Ascii_plot.s_label = "up";
        s_glyph = '*';
        s_points = [ (0.0, 10.0); (100.0, 50.0); (200.0, 90.0) ];
        s_markers = [ (100.0, '^') ];
      };
    ]
  in
  let plot = Harness.Ascii_plot.render ~width:40 ~height:8 ~x_max:300.0 series in
  check Alcotest.bool "has curve glyph" true (contains "*" plot);
  check Alcotest.bool "has marker" true (contains "^" plot);
  check Alcotest.bool "has legend" true (contains "up" plot)

let test_plot_step_interpolation () =
  let v = Harness.Ascii_plot.value_at [ (10.0, 20.0); (50.0, 80.0) ] in
  check (Alcotest.float 1e-9) "before first" 0.0 (v 5.0);
  check (Alcotest.float 1e-9) "between" 20.0 (v 30.0);
  check (Alcotest.float 1e-9) "after last" 80.0 (v 100.0)

let test_table2_lists_all_models () =
  let t = Harness.Experiment.table2 () in
  List.iter
    (fun name -> check Alcotest.bool name true (contains name t))
    Models.Registry.names

let test_run_tool_quick () =
  let entry = Option.get (Models.Registry.find "AFC") in
  List.iter
    (fun tool ->
      let r = Harness.Experiment.run_tool ~budget:30.0 ~seed:1 tool entry in
      check Alcotest.bool
        (Harness.Experiment.tool_name tool ^ " produced a tracker")
        true
        (Stcg.Run_result.decision_pct r >= 0.0))
    [
      Harness.Experiment.STCG; Harness.Experiment.SLDV;
      Harness.Experiment.SimCoTest; Harness.Experiment.STCG_hybrid;
    ]

let test_average_seed_count () =
  let entry = Option.get (Models.Registry.find "AFC") in
  let a =
    Harness.Experiment.average ~budget:20.0 ~seeds:[ 1; 2 ]
      Harness.Experiment.SimCoTest entry
  in
  check Alcotest.int "two runs averaged" 2 a.Harness.Experiment.a_runs;
  (* SLDV collapses to a single run: it is deterministic *)
  let s =
    Harness.Experiment.average ~budget:20.0 ~seeds:[ 1; 2; 3 ]
      Harness.Experiment.SLDV entry
  in
  check Alcotest.int "sldv runs once" 1 s.Harness.Experiment.a_runs

let test_registry_lookup () =
  check Alcotest.bool "case-insensitive find" true
    (Models.Registry.find "cputask" <> None);
  check Alcotest.bool "unknown is None" true (Models.Registry.find "nope" = None);
  check Alcotest.int "eight models" 8 (List.length Models.Registry.entries)

let test_fig4_csv_format () =
  let _, csvs =
    Harness.Experiment.fig4 ~budget:20.0 ~seed:1 ~models:[ "AFC" ] ()
  in
  match csvs with
  | [ (name, csv) ] ->
    check Alcotest.string "model name" "AFC" name;
    check Alcotest.bool "csv header" true
      (contains "tool,time_s,decision_pct" csv)
  | _ -> Alcotest.fail "expected one csv"

let () =
  Alcotest.run "harness"
    [
      ( "rendering",
        [
          Alcotest.test_case "text table" `Quick test_text_table;
          Alcotest.test_case "ascii plot" `Quick test_ascii_plot;
          Alcotest.test_case "step interpolation" `Quick test_plot_step_interpolation;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "table2" `Quick test_table2_lists_all_models;
          Alcotest.test_case "run tools" `Quick test_run_tool_quick;
          Alcotest.test_case "averaging" `Quick test_average_seed_count;
          Alcotest.test_case "registry" `Quick test_registry_lookup;
          Alcotest.test_case "fig4 csv" `Quick test_fig4_csv_format;
        ] );
    ]
