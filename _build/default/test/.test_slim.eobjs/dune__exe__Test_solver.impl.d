test/test_solver.ml: Alcotest List QCheck QCheck_alcotest Slim Solver
