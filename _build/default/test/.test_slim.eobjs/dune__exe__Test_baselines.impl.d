test/test_baselines.ml: Alcotest Baselines Coverage List Slim Stcg
