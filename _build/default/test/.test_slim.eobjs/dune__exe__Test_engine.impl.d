test/test_engine.ml: Alcotest Array Coverage List Slim Stcg
