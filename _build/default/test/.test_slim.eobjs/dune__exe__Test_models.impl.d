test/test_models.ml: Alcotest Array Coverage Fmt Fun List Models Random Slim
