test/test_propagation.ml: Alcotest List QCheck QCheck_alcotest Slim Solver
