test/test_harness.ml: Alcotest Harness List Models Option Stcg String
