test/test_slim.ml: Alcotest Array List QCheck QCheck_alcotest Random Slim String
