test/test_slim.mli:
