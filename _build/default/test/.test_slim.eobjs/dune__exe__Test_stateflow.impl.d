test/test_stateflow.ml: Alcotest Slim Stateflow
