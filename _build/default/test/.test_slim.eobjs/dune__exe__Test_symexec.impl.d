test/test_symexec.ml: Alcotest Array List QCheck QCheck_alcotest Slim Solver Symexec
