test/test_exec.ml: Alcotest Array Fmt List Models Option Random Slim String
