test/test_stateflow.mli:
