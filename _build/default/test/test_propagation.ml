(* Property tests for the solver's abstract domains and the HC4
   propagator: the propagator must never discard concrete solutions
   (soundness of narrowing), and domain operations must satisfy the
   usual lattice laws. *)

module V = Slim.Value
module Ir = Slim.Ir
module T = Solver.Term
module Dom = Solver.Dom
module Hc4 = Solver.Hc4

let check = Alcotest.check

(* --- Dom lattice laws -------------------------------------------------- *)

let gen_int_dom =
  QCheck.Gen.(
    map2
      (fun lo span -> Dom.intn lo (lo + span))
      (int_range (-50) 50) (int_range 0 60))

let arb_int_dom = QCheck.make gen_int_dom

let prop_meet_commutative =
  QCheck.Test.make ~name:"meet commutative (int)" ~count:200
    (QCheck.pair arb_int_dom arb_int_dom)
    (fun (a, b) ->
      match Dom.meet a b, Dom.meet b a with
      | x, y -> Dom.equal x y
      | exception Dom.Empty -> (
        match Dom.meet b a with
        | _ -> false
        | exception Dom.Empty -> true))

let prop_hull_contains_both =
  QCheck.Test.make ~name:"hull is an upper bound" ~count:200
    (QCheck.pair arb_int_dom arb_int_dom)
    (fun (a, b) ->
      let h = Dom.hull a b in
      let contained d =
        match Dom.meet d h with
        | m -> Dom.equal m d
        | exception Dom.Empty -> false
      in
      contained a && contained b)

let prop_meet_lower_bound =
  QCheck.Test.make ~name:"meet is a lower bound" ~count:200
    (QCheck.pair arb_int_dom arb_int_dom)
    (fun (a, b) ->
      match Dom.meet a b with
      | m ->
        (* every member of the meet is a member of both *)
        List.for_all
          (fun v -> Dom.member a v && Dom.member b v)
          (Dom.sample m)
      | exception Dom.Empty -> true)

let prop_split_partitions =
  QCheck.Test.make ~name:"split halves cover the domain" ~count:200
    arb_int_dom
    (fun d ->
      match Dom.split d with
      | None -> Dom.is_singleton d
      | Some (l, r) ->
        let h = Dom.hull l r in
        Dom.equal h d)

(* --- HC4 soundness ------------------------------------------------------ *)

(* random small constraint over x, y in [-6,6] *)
let gen_constraint =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ map T.cint (int_range (-6) 6); return (T.var "x"); return (T.var "y") ]
  in
  let num =
    oneof
      [
        map2 (fun a b -> T.binop Ir.Add a b) leaf leaf;
        map2 (fun a b -> T.binop Ir.Sub a b) leaf leaf;
        map2 (fun a b -> T.binop Ir.Min a b) leaf leaf;
        map2 (fun a b -> T.binop Ir.Max a b) leaf leaf;
        map (fun a -> T.unop Ir.Abs_op a) leaf;
        leaf;
      ]
  in
  let atom =
    map3
      (fun op a b -> T.cmp op a b)
      (oneofl [ Ir.Eq; Ir.Ne; Ir.Lt; Ir.Le; Ir.Gt; Ir.Ge ])
      num num
  in
  oneof
    [ atom; map2 T.and_ atom atom; map2 T.or_ atom atom; map T.not_ atom ]

let sat_at c x y =
  match
    T.eval
      (function
        | "x" -> V.Int x
        | "y" -> V.Int y
        | _ -> raise Not_found)
      c
  with
  | V.Bool b -> b
  | _ -> false

let prop_propagation_keeps_solutions =
  QCheck.Test.make ~name:"HC4 never discards a concrete solution"
    ~count:300
    (QCheck.make gen_constraint)
    (fun c ->
      let dom = V.tint_range (-6) 6 in
      let store =
        Hc4.create_store [ ("x", Dom.of_ty dom); ("y", Dom.of_ty dom) ]
      in
      match Hc4.propagate store c with
      | `Unsat ->
        (* claim: no solution exists at all *)
        let witness = ref false in
        for x = -6 to 6 do
          for y = -6 to 6 do
            if sat_at c x y then witness := true
          done
        done;
        not !witness
      | `Ok ->
        (* every concrete solution must survive in the narrowed store *)
        let ok = ref true in
        for x = -6 to 6 do
          for y = -6 to 6 do
            if sat_at c x y then begin
              if not (Dom.member (Hc4.get store "x") (V.Int x)) then
                ok := false;
              if not (Dom.member (Hc4.get store "y") (V.Int y)) then
                ok := false
            end
          done
        done;
        !ok)

let prop_forward_eval_contains_value =
  QCheck.Test.make ~name:"forward evaluation over-approximates" ~count:300
    (QCheck.make
       QCheck.Gen.(
         pair gen_constraint (pair (int_range (-6) 6) (int_range (-6) 6))))
    (fun (c, (x, y)) ->
      (* evaluate the constraint's truth concretely; the abstract forward
         value must consider that outcome possible *)
      let store =
        Hc4.create_store
          [ ("x", Dom.intn x x); ("y", Dom.intn y y) ]
      in
      let concrete = sat_at c x y in
      match Hc4.fwd store c with
      | Dom.Dbool { can_true; can_false } ->
        if concrete then can_true else can_false
      | _ -> false)

(* --- explicit regression cases ---------------------------------------- *)

let test_propagate_equality_chain () =
  let c =
    T.and_
      (T.cmp Ir.Eq (T.var "x") (T.binop Ir.Add (T.var "y") (T.cint 3)))
      (T.cmp Ir.Eq (T.var "y") (T.cint 4))
  in
  let store =
    Hc4.create_store
      [ ("x", Dom.intn 0 100); ("y", Dom.intn 0 100) ]
  in
  (match Hc4.propagate store c with
   | `Ok -> ()
   | `Unsat -> Alcotest.fail "chain is satisfiable");
  check Alcotest.bool "x pinned to 7" true
    (Dom.singleton_value (Hc4.get store "x") = Some (V.Int 7))

let test_propagate_refutes_disjoint () =
  let c =
    T.and_
      (T.cmp Ir.Lt (T.var "x") (T.cint 10))
      (T.cmp Ir.Gt (T.var "x") (T.cint 20))
  in
  let store = Hc4.create_store [ ("x", Dom.intn 0 100) ] in
  match Hc4.propagate store c with
  | `Unsat -> ()
  | `Ok -> Alcotest.fail "expected refutation"

let test_bool_coercion_to_real () =
  (* To_real over a boolean domain, as switch controls compile.
     Propagation alone only guarantees soundness (closed intervals
     cannot express strict bounds), but the full solver must decide. *)
  let c = T.cmp Ir.Gt (T.unop Ir.To_real (T.var "b")) (T.creal 0.0) in
  let store = Hc4.create_store [ ("b", Dom.top_bool) ] in
  (match Hc4.propagate store c with
   | `Ok -> ()
   | `Unsat -> Alcotest.fail "satisfiable constraint refuted");
  check Alcotest.bool "true survives propagation" true
    (Dom.member (Hc4.get store "b") (V.Bool true));
  match
    Solver.Csp.solve { Solver.Csp.p_vars = [ ("b", V.Tbool) ]; p_constraint = c }
  with
  | Solver.Csp.Sat a, _ ->
    check Alcotest.bool "solver picks true" true
      (V.to_bool (Solver.Csp.Smap.find "b" a))
  | (Solver.Csp.Unsat | Solver.Csp.Unknown), _ ->
    Alcotest.fail "solver must find b = true"

let () =
  Alcotest.run "propagation"
    [
      ( "dom-laws",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_meet_commutative; prop_hull_contains_both;
            prop_meet_lower_bound; prop_split_partitions;
          ] );
      ( "hc4-soundness",
        List.map QCheck_alcotest.to_alcotest
          [ prop_propagation_keeps_solutions; prop_forward_eval_contains_value ] );
      ( "regressions",
        [
          Alcotest.test_case "equality chain" `Quick test_propagate_equality_chain;
          Alcotest.test_case "disjoint refuted" `Quick test_propagate_refutes_disjoint;
          Alcotest.test_case "bool-to-real" `Quick test_bool_coercion_to_real;
        ] );
    ]
