(* Tests for the SLDV-like and SimCoTest-like baselines. *)

module V = Slim.Value
module Ir = Slim.Ir
module Interp = Slim.Interp
module Tracker = Coverage.Tracker
module RR = Stcg.Run_result

let check = Alcotest.check

(* A model with an easy surface and one state-matching branch: random
   search should take the surface quickly and miss the matching branch;
   bounded symbolic execution should reach the matching branch (it is
   only two steps deep). *)
let two_step_secret =
  let open Ir in
  renumber_decisions
    {
      name = "two_step";
      inputs = [ input "x" (V.tint_range 0 5000); input "store" V.Tbool ];
      outputs = [ output "hit" V.Tbool; output "parity" V.Tbool ];
      states = [ state "mem" (V.tint_range 0 5000) (V.Int 0) ];
      locals = [];
      body =
        [
          assign_out "parity" (Binop (Mod, iv "x", ci 2) =: ci 0);
          if_ (iv "store")
            [ assign_state "mem" (iv "x") ]
            [
              (* the probe must be exactly 17 above the stored value:
                 constant input signals can never satisfy it *)
              if_ (iv "x" =: sv "mem" +: ci 17 &&: (sv "mem" >: ci 0))
                [ assign_out "hit" (cb true) ]
                [ assign_out "hit" (cb false) ];
            ];
        ];
    }

let test_sldv_finds_two_step_chain () =
  let result =
    Baselines.Sldv.run
      ~config:
        { Baselines.Sldv.default_config with Baselines.Sldv.budget = 600.0 }
      ~model:"two_step" two_step_secret
  in
  check Alcotest.bool "full decision coverage via unrolling" true
    (Tracker.fully_covered result.RR.tracker)

let test_sldv_deterministic () =
  let r1 = Baselines.Sldv.run ~model:"d" two_step_secret in
  let r2 = Baselines.Sldv.run ~model:"d" two_step_secret in
  check Alcotest.int "same test count"
    (List.length r1.RR.testcases)
    (List.length r2.RR.testcases);
  check (Alcotest.float 1e-9) "same final time" r1.RR.final_time
    r2.RR.final_time

let test_sldv_testcases_replay () =
  let result = Baselines.Sldv.run ~model:"r" two_step_secret in
  let replay = Stcg.Testcase.replay_suite two_step_secret result.RR.testcases in
  check Alcotest.int "replay reproduces decision coverage"
    (Tracker.decision result.RR.tracker).Tracker.covered
    (Tracker.decision replay).Tracker.covered

let test_simcotest_covers_surface_misses_secret () =
  let result =
    Baselines.Simcotest.run
      ~config:
        {
          Baselines.Simcotest.default_config with
          Baselines.Simcotest.budget = 1200.0;
          seed = 9;
        }
      ~model:"s" two_step_secret
  in
  let covered = Tracker.covered_branches result.RR.tracker in
  (* the easy branches (store / parity / miss) are covered quickly *)
  check Alcotest.bool "covers the surface" true
    (Slim.Branch.Key_set.cardinal covered >= 3);
  (* the x = mem (> 0) equality over [0,5000] is practically
     unreachable for random search *)
  check Alcotest.bool "misses the state-matching branch" false
    (Tracker.is_branch_covered result.RR.tracker (1, Slim.Branch.Then))

let test_simcotest_seed_reproducible () =
  let run seed =
    Baselines.Simcotest.run
      ~config:
        {
          Baselines.Simcotest.default_config with
          Baselines.Simcotest.budget = 300.0;
          seed;
        }
      ~model:"s" two_step_secret
  in
  let a = run 4 and b = run 4 and c = run 5 in
  check Alcotest.int "same seed, same tests" (List.length a.RR.testcases)
    (List.length b.RR.testcases);
  check (Alcotest.float 1e-9) "same seed, same clock" a.RR.final_time
    b.RR.final_time;
  (* different seeds explore differently (statistically near-certain) *)
  ignore c

let test_simcotest_respects_budget () =
  let result =
    Baselines.Simcotest.run
      ~config:
        {
          Baselines.Simcotest.default_config with
          Baselines.Simcotest.budget = 50.0;
        }
      ~model:"b" two_step_secret
  in
  check Alcotest.bool "stops at the virtual budget" true
    (result.RR.final_time <= 50.0 +. 1e-9)

let test_timelines_monotone () =
  let results =
    [
      Baselines.Sldv.run ~model:"t" two_step_secret;
      Baselines.Simcotest.run
        ~config:
          {
            Baselines.Simcotest.default_config with
            Baselines.Simcotest.budget = 300.0;
          }
        ~model:"t" two_step_secret;
    ]
  in
  List.iter
    (fun (r : RR.t) ->
      let rec mono = function
        | (t1, c1) :: ((t2, c2) :: _ as rest) ->
          t1 <= t2 && c1 <= c2 && mono rest
        | _ -> true
      in
      check Alcotest.bool (r.RR.tool ^ " timeline monotone") true
        (mono r.RR.timeline))
    results

let test_stcg_beats_baselines_on_secret () =
  (* the defining comparison, in miniature *)
  let stcg =
    Stcg.Engine.run
      ~config:
        { Stcg.Engine.default_config with Stcg.Engine.budget = 600.0; seed = 2 }
      two_step_secret
  in
  check Alcotest.bool "STCG covers the matching branch" true
    (Tracker.is_branch_covered stcg.Stcg.Engine.r_tracker
       (1, Slim.Branch.Then))

let () =
  Alcotest.run "baselines"
    [
      ( "sldv",
        [
          Alcotest.test_case "two-step chain" `Quick test_sldv_finds_two_step_chain;
          Alcotest.test_case "deterministic" `Quick test_sldv_deterministic;
          Alcotest.test_case "replayable" `Quick test_sldv_testcases_replay;
        ] );
      ( "simcotest",
        [
          Alcotest.test_case "surface vs secret" `Quick
            test_simcotest_covers_surface_misses_secret;
          Alcotest.test_case "reproducible" `Quick test_simcotest_seed_reproducible;
          Alcotest.test_case "budget" `Quick test_simcotest_respects_budget;
        ] );
      ( "cross-tool",
        [
          Alcotest.test_case "timelines" `Quick test_timelines_monotone;
          Alcotest.test_case "stcg wins" `Quick test_stcg_beats_baselines_on_secret;
        ] );
    ]
