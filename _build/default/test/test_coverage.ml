(* Tests for decision / condition / MCDC coverage tracking. *)

module V = Slim.Value
module Ir = Slim.Ir
module Interp = Slim.Interp
module Branch = Slim.Branch
module Tracker = Coverage.Tracker
module Criteria = Coverage.Criteria

let check = Alcotest.check

(* y := 1 when (a && b) else 0; plus a switch on s. *)
let prog =
  let open Ir in
  renumber_decisions
    {
      name = "cov";
      inputs =
        [ input "a" V.Tbool; input "b" V.Tbool; input "s" (V.tint_range 0 3) ];
      outputs = [ output "y" V.tint ];
      states = [];
      locals = [];
      body =
        [
          if_ (iv "a" &&: iv "b")
            [ assign_out "y" (ci 1) ]
            [ assign_out "y" (ci 0) ];
          switch (iv "s") [ (0, []); (1, []) ] [];
        ];
    }

let run tracker a b s =
  let ins =
    Interp.inputs_of_list [ ("a", V.Bool a); ("b", V.Bool b); ("s", V.Int s) ]
  in
  ignore
    (Interp.run_step ~on_event:(Tracker.observe tracker) prog
       (Interp.initial_state prog) ins)

let test_totals () =
  let t = Tracker.create prog in
  let c = Tracker.criteria t in
  (* if: 2 branches; switch: 2 cases + default = 3 -> 5 decision points *)
  check Alcotest.int "decision total" 5 c.Criteria.decision_total;
  (* 2 atoms, both polarities *)
  check Alcotest.int "condition total" 4 c.Criteria.condition_total;
  check Alcotest.int "mcdc total" 2 c.Criteria.mcdc_total

let test_decision_accumulates () =
  let t = Tracker.create prog in
  run t true true 0;
  let d = Tracker.decision t in
  check Alcotest.int "two branches after one step" 2 d.Tracker.covered;
  run t false true 1;
  run t true false 2;
  let d = Tracker.decision t in
  check Alcotest.int "all five covered" 5 d.Tracker.covered;
  check Alcotest.bool "fully covered" true (Tracker.fully_covered t)

let test_condition_coverage () =
  let t = Tracker.create prog in
  run t true true 0;
  let c = Tracker.condition t in
  check Alcotest.int "a=T b=T gives two outcomes" 2 c.Tracker.covered;
  run t false false 0;
  let c = Tracker.condition t in
  check Alcotest.int "all four condition outcomes" 4 c.Tracker.covered

let test_mcdc_and_gate () =
  let t = Tracker.create prog in
  (* TT vs FT isolates a; TT vs TF isolates b. *)
  run t true true 0;
  check Alcotest.int "no pair yet" 0 (Tracker.mcdc t).Tracker.covered;
  run t false true 0;
  check Alcotest.int "a isolated" 1 (Tracker.mcdc t).Tracker.covered;
  run t true false 0;
  check Alcotest.int "both isolated" 2 (Tracker.mcdc t).Tracker.covered

let test_mcdc_ff_tt_not_independent () =
  (* FF vs TT differ in both conditions and neither is masked: no MCDC. *)
  let t = Tracker.create prog in
  run t false false 0;
  run t true true 0;
  check Alcotest.int "FF/TT pair proves nothing for &&" 0
    (Tracker.mcdc t).Tracker.covered

let test_mcdc_masking_or_and () =
  (* guard: a || (b && c).  Pair (F,T,T) vs (T,T,F): outcomes T/T - no.
     Use (F,T,T)->T vs (F,T,F)->F isolates c;
     (F,F,x): b masked?  Check masking pair for a: (F,F,F)->F vs (T,F,F)->T
     is unique-cause anyway.  Masking case: (T,T,T)->T vs (F,F,T)->F:
     differ in a and b; flipping b alone in (T,T,T) gives (T,F,T)->T (masked),
     in (F,F,T) gives (F,T,T)->T -> NOT masked, so pair must not count. *)
  let open Ir in
  let p =
    renumber_decisions
      {
        name = "mask";
        inputs = [ input "a" V.Tbool; input "b" V.Tbool; input "c" V.Tbool ];
        outputs = [ output "y" V.tint ];
        states = [];
        locals = [];
        body =
          [
            if_ (iv "a" ||: (iv "b" &&: iv "c"))
              [ assign_out "y" (ci 1) ]
              [ assign_out "y" (ci 0) ];
          ];
      }
  in
  let t = Tracker.create p in
  let run a b c =
    let ins =
      Interp.inputs_of_list
        [ ("a", V.Bool a); ("b", V.Bool b); ("c", V.Bool c) ]
    in
    ignore
      (Interp.run_step ~on_event:(Tracker.observe t) p
         (Interp.initial_state p) ins)
  in
  run true true true;
  run false false true;
  (* Only the non-masked pair observed: nothing proven yet. *)
  check Alcotest.int "unmasked pair rejected" 0 (Tracker.mcdc t).Tracker.covered;
  run false true true;
  (* (T,T,T) vs (F,T,T): unique cause for a. *)
  check Alcotest.int "a proven" 1 (Tracker.mcdc t).Tracker.covered;
  run false true false;
  (* (F,T,T)=T vs (F,T,F)=F isolates c. *)
  check Alcotest.int "c proven" 2 (Tracker.mcdc t).Tracker.covered

let test_guard_fn () =
  let open Ir in
  let guard = (iv "a" &&: not_ (iv "b")) ||: iv "c" in
  let f = Criteria.guard_fn guard in
  check Alcotest.bool "TFT" true (f [| true; false; true |]);
  check Alcotest.bool "TTF" false (f [| true; true; false |]);
  check Alcotest.bool "FFF" false (f [| false; false; false |]);
  check Alcotest.bool "FFT" true (f [| false; false; true |])

let test_uncovered_branches () =
  let t = Tracker.create prog in
  run t true true 0;
  let uncovered = Tracker.uncovered_branches t in
  check Alcotest.int "three uncovered" 3 (List.length uncovered);
  check Alcotest.bool "else uncovered" true
    (List.exists
       (fun (b : Branch.t) -> b.outcome = Branch.Else)
       uncovered)

let test_copy_independent () =
  let t = Tracker.create prog in
  run t true true 0;
  let t2 = Tracker.copy t in
  run t2 false false 1;
  check Alcotest.int "copy advanced" 4 (Tracker.decision t2).Tracker.covered;
  check Alcotest.int "original unchanged" 2 (Tracker.decision t).Tracker.covered

let prop_pct_bounds =
  QCheck.Test.make ~name:"pct in [0,100]" ~count:200
    QCheck.(pair small_nat small_nat)
    (fun (c, t) ->
      let c = min c t in
      let p = Tracker.pct { Tracker.covered = c; total = t } in
      p >= 0.0 && p <= 100.0)

let () =
  Alcotest.run "coverage"
    [
      ( "tracking",
        [
          Alcotest.test_case "totals" `Quick test_totals;
          Alcotest.test_case "decision" `Quick test_decision_accumulates;
          Alcotest.test_case "condition" `Quick test_condition_coverage;
          Alcotest.test_case "uncovered" `Quick test_uncovered_branches;
          Alcotest.test_case "copy" `Quick test_copy_independent;
        ] );
      ( "mcdc",
        [
          Alcotest.test_case "and gate" `Quick test_mcdc_and_gate;
          Alcotest.test_case "tt-ff rejected" `Quick test_mcdc_ff_tt_not_independent;
          Alcotest.test_case "masking" `Quick test_mcdc_masking_or_and;
          Alcotest.test_case "guard fn" `Quick test_guard_fn;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest [ prop_pct_bounds ] );
    ]
