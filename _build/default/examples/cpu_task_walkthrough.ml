(* The paper's running example (Section III-C): watch STCG build the
   state tree for the CPUTask model.

     dune exec examples/cpu_task_walkthrough.exe

   Reproduces the narrative of the paper's Table I: shallow opcode
   branches solve immediately from the root state; delete/modify/check
   "success" branches only solve on states where an Add happened
   earlier; the queue-full branch falls to a random sequence of
   previously solved inputs. *)

module Engine = Stcg.Engine
module Tracker = Coverage.Tracker

let () =
  let entry = Option.get (Models.Registry.find "CPUTask") in
  let prog = entry.Models.Registry.program () in
  Fmt.pr "== CPUTask walkthrough (paper Section III-C / Table I) ==@.@.";
  Fmt.pr "branches: %d, decisions: %d@.@." (Slim.Branch.count prog)
    (Slim.Ir.decision_count prog);

  let config = { Engine.default_config with Engine.seed = 1; budget = 3600.0 } in
  let run = Engine.run ~config prog in

  (* narrate the event log, paper-Table-I style *)
  let covered = ref 0 in
  let total = (Tracker.decision run.Engine.r_tracker).Tracker.total in
  let step = ref 0 in
  List.iter
    (fun ev ->
      match ev with
      | Engine.Ev_solve { target; node; result = `Sat; time } ->
        incr step;
        Fmt.pr "step %3d  t=%6.1fs  solved %a on S%d@." !step time
          Symexec.Explore.pp_target target node
      | Engine.Ev_solve _ -> ()
      | Engine.Ev_random_exec { node; len; time } ->
        incr step;
        Fmt.pr "step %3d  t=%6.1fs  random sequence (%d inputs) from S%d@."
          !step time len node
      | Engine.Ev_coverage { decision_covered; time } ->
        if decision_covered > !covered then begin
          Fmt.pr "          t=%6.1fs  coverage %d/%d branches@." time
            decision_covered total;
          covered := decision_covered
        end
      | Engine.Ev_testcase tc ->
        Fmt.pr "          >> test case #%d (%a, %d steps)@."
          tc.Stcg.Testcase.tc_id Stcg.Testcase.pp_origin
          tc.Stcg.Testcase.origin
          (Stcg.Testcase.length tc))
    run.Engine.r_events;

  Fmt.pr "@.final: %a@." Tracker.pp_summary run.Engine.r_tracker;
  Fmt.pr "state tree: %d nodes (%d distinct states)@."
    (Stcg.State_tree.size run.Engine.r_tree)
    (Stcg.State_tree.distinct_states run.Engine.r_tree);
  Fmt.pr "test cases: %d (%d from solving, %d from random execution)@."
    (List.length run.Engine.r_testcases)
    (List.length
       (List.filter
          (fun (tc : Stcg.Testcase.t) -> tc.Stcg.Testcase.origin = Stcg.Testcase.Solved)
          run.Engine.r_testcases))
    (List.length
       (List.filter
          (fun (tc : Stcg.Testcase.t) ->
            tc.Stcg.Testcase.origin = Stcg.Testcase.Random_exec)
          run.Engine.r_testcases))
