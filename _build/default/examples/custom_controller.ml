(* Authoring your own model with the block-diagram builder and a chart,
   then generating tests for it.

     dune exec examples/custom_controller.exe

   The model is a small tank-level controller: a fill valve driven by a
   mode chart (Idle / Filling / Draining / Fault), a level integrator,
   and a stuck-sensor interlock that needs a specific two-step input
   pattern — the kind of branch a random tester rarely hits. *)

module V = Slim.Value
module Ir = Slim.Ir
module B = Slim.Builder
module C = Stateflow.Chart

let mode_chart =
  let open Ir in
  C.chart ~name:"tank_mode"
    ~inputs:
      [
        input "start" V.Tbool;
        input "stop" V.Tbool;
        input "level_high" V.Tbool;
        input "level_low" V.Tbool;
        input "sensor_stuck" V.Tbool;
      ]
    ~outputs:[ output "mode" (V.tint_range 0 3) ]
    (C.region ~initial:"Idle"
       ~transitions:
         [
           C.trans ~guard:(iv "sensor_stuck") "Idle" "Fault";
           C.trans ~guard:(iv "start" &&: not_ (iv "level_high")) "Idle"
             "Filling";
           C.trans ~guard:(iv "sensor_stuck") "Filling" "Fault";
           C.trans ~guard:(iv "level_high" ||: iv "stop") "Filling" "Draining";
           C.trans ~guard:(iv "sensor_stuck") "Draining" "Fault";
           C.trans ~guard:(iv "level_low") "Draining" "Idle";
         ]
       [
         C.state "Idle" ~entry:[ assign_out "mode" (ci 0) ];
         C.state "Filling" ~entry:[ assign_out "mode" (ci 1) ];
         C.state "Draining" ~entry:[ assign_out "mode" (ci 2) ];
         C.state "Fault" ~entry:[ assign_out "mode" (ci 3) ];
       ])

let model () =
  let b = B.create "tank" in
  let start = B.inport b "start" V.Tbool in
  let stop = B.inport b "stop" V.Tbool in
  let sensor = B.inport b "sensor" (V.treal_range 0.0 10.0) in
  (* level model: fills at 0.5/step in Filling, drains at 0.8/step *)
  let level = B.ds_read b "level" in
  B.data_store b "level" (V.treal_range 0.0 10.0) (V.Real 2.0);
  let level_high = B.compare_const b Ir.Gt 8.0 level in
  let level_low = B.compare_const b Ir.Lt 1.0 level in
  (* stuck sensor: reading differs from modeled level two steps running *)
  let err = B.abs_ b (B.diff b sensor level) in
  let big_err = B.compare_const b Ir.Gt 3.0 err in
  let big_err_prev = B.unit_delay b (V.Bool false) big_err in
  let stuck = B.and_ b [ big_err; big_err_prev ] in
  let mode =
    match
      B.chart b
        (Stateflow.Sf_compile.compile mode_chart)
        [ start; stop; level_high; level_low; stuck ]
    with
    | [ m ] -> m
    | _ -> assert false
  in
  B.outport b "mode" mode;
  let filling = B.compare_const b Ir.Eq 1.0 mode in
  let draining = B.compare_const b Ir.Eq 2.0 mode in
  let delta_fill =
    B.switch b ~data1:(B.const_r b 0.5) ~control:filling
      ~data2:(B.const_r b 0.0) ()
  in
  let delta_drain =
    B.switch b ~data1:(B.const_r b (-0.8)) ~control:draining
      ~data2:(B.const_r b 0.0) ()
  in
  let level' =
    B.saturation b ~lower:0.0 ~upper:10.0
      (B.sum b [ level; delta_fill; delta_drain ])
  in
  B.ds_write b "level" level';
  B.outport b "level" level';
  B.finish b

let () =
  Fmt.pr "== custom controller example ==@.@.";
  let m = model () in
  Fmt.pr "diagram: %d blocks@." (Slim.Model.block_count m);
  let prog = Slim.Compile.to_program m in
  Fmt.pr "compiled: %d branches, %d statements@.@." (Slim.Branch.count prog)
    (Slim.Ir.stmt_count prog);

  (* simulate a few steps by hand first *)
  let st = ref (Slim.Interp.initial_state prog) in
  let step start stop sensor =
    let out, st' =
      Slim.Interp.run_step prog !st
        (Slim.Interp.inputs_of_list
           [
             ("start", V.Bool start); ("stop", V.Bool stop);
             ("sensor", V.Real sensor);
           ])
    in
    st := st';
    Fmt.pr "  mode=%a level=%a@." Slim.Value.pp
      (Slim.Interp.Smap.find "mode" out)
      Slim.Value.pp
      (Slim.Interp.Smap.find "level" out)
  in
  Fmt.pr "manual simulation:@.";
  step true false 2.0;
  step false false 2.5;
  step false false 3.0;

  (* now let STCG cover it *)
  let config =
    { Stcg.Engine.default_config with Stcg.Engine.seed = 7; budget = 1800.0 }
  in
  let run = Stcg.Engine.run ~config prog in
  Fmt.pr "@.STCG: %a@." Coverage.Tracker.pp_summary run.Stcg.Engine.r_tracker;
  Fmt.pr "test cases: %d@." (List.length run.Stcg.Engine.r_testcases);
  (* which branches stayed uncovered, if any? *)
  match Coverage.Tracker.uncovered_branches run.Stcg.Engine.r_tracker with
  | [] -> Fmt.pr "every branch covered.@."
  | uncovered ->
    Fmt.pr "uncovered branches:@.";
    List.iter (fun b -> Fmt.pr "  %a@." Slim.Branch.pp b) uncovered
