(* Run all three generators on one model and print a mini Table III row
   plus a coverage-versus-time panel (one Figure 4 subplot).

     dune exec examples/compare_tools.exe            # NICProtocol
     dune exec examples/compare_tools.exe -- TCP     # another model *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "NICProtocol" in
  let entry =
    match Models.Registry.find name with
    | Some e -> e
    | None ->
      Fmt.epr "unknown model %s; try: %s@." name
        (String.concat ", " Models.Registry.names);
      exit 2
  in
  Fmt.pr "== tool comparison on %s ==@.@." entry.Models.Registry.name;
  let budget = 3600.0 in
  let results =
    List.map
      (fun tool -> Harness.Experiment.run_tool ~budget ~seed:1 tool entry)
      [ Harness.Experiment.SLDV; Harness.Experiment.SimCoTest;
        Harness.Experiment.STCG ]
  in
  List.iter (fun r -> Fmt.pr "%a@." Stcg.Run_result.pp_summary r) results;
  let series =
    List.map
      (fun (r : Stcg.Run_result.t) ->
        let glyph =
          match r.Stcg.Run_result.tool with
          | "STCG" -> '*'
          | "SLDV" -> '#'
          | _ -> '.'
        in
        {
          Harness.Ascii_plot.s_label = r.Stcg.Run_result.tool;
          s_glyph = glyph;
          s_points = r.Stcg.Run_result.timeline;
          s_markers = [];
        })
      results
  in
  Fmt.pr "@.decision coverage vs virtual time:@.%s@."
    (Harness.Ascii_plot.render ~x_max:budget series)
