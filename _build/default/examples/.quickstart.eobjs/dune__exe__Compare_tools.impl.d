examples/compare_tools.ml: Array Fmt Harness List Models Stcg String Sys
