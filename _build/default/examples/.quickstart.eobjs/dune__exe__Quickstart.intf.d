examples/quickstart.mli:
