examples/cpu_task_walkthrough.ml: Coverage Fmt List Models Option Slim Stcg Symexec
