examples/cpu_task_walkthrough.mli:
