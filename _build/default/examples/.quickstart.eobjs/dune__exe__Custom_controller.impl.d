examples/custom_controller.ml: Coverage Fmt List Slim Stateflow Stcg
