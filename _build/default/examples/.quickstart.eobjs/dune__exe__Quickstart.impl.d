examples/quickstart.ml: Coverage Fmt List Slim Stcg
