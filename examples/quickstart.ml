(* Quickstart: build a tiny stateful model, run STCG on it, inspect the
   generated test cases, and replay them for an independent coverage
   measurement.

     dune exec examples/quickstart.exe

   The model is a bounded up/down counter with a latched alarm: the
   alarm branch only fires after the counter has been driven to its
   limit — a miniature version of the "deep internal state" problem the
   paper addresses. *)

module V = Slim.Value
module Ir = Slim.Ir

(* A model authored directly in the step-program IR:

   inputs:  up, down : bool
   state:   count : int [0,7];  alarm : bool
   output:  level : int; alarm_on : bool

   The alarm latches when the counter saturates at 7. *)
let counter_model =
  let open Ir in
  renumber_decisions
    {
      name = "updown";
      inputs = [ input "up" V.Tbool; input "down" V.Tbool ];
      outputs =
        [ output "level" (V.tint_range 0 7); output "alarm_on" V.Tbool ];
      states =
        [
          state "count" (V.tint_range 0 7) (V.Int 0);
          state "alarm" V.Tbool (V.Bool false);
        ];
      locals = [];
      body =
        [
          if_ (iv "up" &&: not_ (iv "down"))
            [
              if_ (sv "count" <: ci 7)
                [ assign_state "count" (sv "count" +: ci 1) ]
                [ assign_state "alarm" (cb true) ];
            ]
            [
              if_ (iv "down" &&: not_ (iv "up"))
                [
                  if_ (sv "count" >: ci 0)
                    [ assign_state "count" (sv "count" -: ci 1) ]
                    [];
                ]
                [];
            ];
          assign_out "level" (sv "count");
          assign_out "alarm_on" (sv "alarm");
        ];
    }

let () =
  Fmt.pr "== STCG quickstart ==@.@.";
  Fmt.pr "Model: %d branches, %d decisions@."
    (Slim.Branch.count counter_model)
    (Slim.Ir.decision_count counter_model);

  (* run the STCG engine with a small virtual budget *)
  let config =
    { Stcg.Engine.default_config with Stcg.Engine.seed = 42; budget = 600.0 }
  in
  let run = Stcg.Engine.run ~config counter_model in

  Fmt.pr "@.Coverage: %a@." Coverage.Tracker.pp_summary
    run.Stcg.Engine.r_tracker;
  Fmt.pr "States explored: %d; virtual time: %.1fs@."
    (Stcg.State_tree.size run.Stcg.Engine.r_tree)
    (Stcg.Vclock.now run.Stcg.Engine.r_clock);

  (* show the generated test cases (steps are slot arrays; the compiled
     handle maps slots back to input names for printing) *)
  Fmt.pr "@.Test cases (inputs per step):@.";
  let exec = Slim.Exec.handle counter_model in
  List.iter
    (fun (tc : Stcg.Testcase.t) ->
      Fmt.pr "  %a@." Stcg.Testcase.pp tc;
      List.iteri
        (fun i step ->
          Fmt.pr "    step %d: %a@." i (Slim.Exec.pp_inputs exec) step)
        tc.Stcg.Testcase.steps)
    run.Stcg.Engine.r_testcases;

  (* independent replay, the "Signal Builder" check *)
  let replay =
    Stcg.Testcase.replay_suite counter_model run.Stcg.Engine.r_testcases
  in
  Fmt.pr "@.Replay of the exported suite: %a@." Coverage.Tracker.pp_summary
    replay;

  (* the text export format round-trips *)
  let text = Stcg.Testcase.to_text counter_model run.Stcg.Engine.r_testcases in
  Fmt.pr "@.Exported suite (text format):@.%s@." text
